"""Sidecar behaviour: proxying, retries, timeouts, breakers, pooling,
routing, hedging, mTLS — exercised over the real simulated network."""

import pytest

from helpers import MeshTestbed, echo_handler

from repro.http import HttpRequest, HttpStatus, REQUEST_ID, TRACE_ID
from repro.mesh import (
    HeaderMatch,
    HedgePolicy,
    MeshConfig,
    MtlsContext,
    RetryPolicy,
    RouteDestination,
    RouteRule,
    subset,
)


def submit(testbed, gateway, path="/", **headers):
    request = HttpRequest(service="", path=path)
    for key, value in headers.items():
        request.headers[key.replace("_", "-")] = value
    event = gateway.submit(request)
    response = testbed.sim.run(until=event)
    return request, response


class TestBasicProxying:
    def test_round_trip(self):
        testbed = MeshTestbed()
        testbed.add_service("echo", echo_handler(body_size=1234))
        gateway = testbed.finish("echo")
        _, response = submit(testbed, gateway)
        assert response.status == 200
        assert response.body_size == 1234

    def test_request_id_and_trace_assigned(self):
        testbed = MeshTestbed()
        testbed.add_service("echo", echo_handler())
        gateway = testbed.finish("echo")
        request, _ = submit(testbed, gateway)
        assert REQUEST_ID in request.headers
        assert TRACE_ID in request.headers

    def test_unknown_service_is_503(self):
        testbed = MeshTestbed()
        testbed.add_service("echo", echo_handler())
        gateway = testbed.finish("ghost-service")
        _, response = submit(testbed, gateway)
        assert response.status == HttpStatus.SERVICE_UNAVAILABLE

    def test_missing_handler_is_404(self):
        testbed = MeshTestbed()
        testbed.add_service("empty", handler=None)
        gateway = testbed.finish("empty")
        _, response = submit(testbed, gateway)
        assert response.status == HttpStatus.NOT_FOUND

    def test_crashing_handler_is_500(self):
        def broken(ctx, request):
            yield ctx.sleep(0.001)
            raise RuntimeError("app bug")

        testbed = MeshTestbed()
        testbed.add_service("broken", broken)
        gateway = testbed.finish("broken")
        _, response = submit(testbed, gateway)
        assert response.status == HttpStatus.INTERNAL_ERROR

    def test_telemetry_records_the_hop(self):
        testbed = MeshTestbed()
        testbed.add_service("echo", echo_handler())
        gateway = testbed.finish("echo")
        submit(testbed, gateway)
        records = testbed.mesh.telemetry.records
        assert any(
            r.source == "ingress-gateway" and r.destination == "echo"
            for r in records
        )

    def test_spans_recorded_for_both_sides(self):
        testbed = MeshTestbed()
        testbed.add_service("echo", echo_handler())
        gateway = testbed.finish("echo")
        request, _ = submit(testbed, gateway)
        trace = testbed.mesh.tracer.trace(request.headers[TRACE_ID])
        operations = {span.operation for span in trace.spans}
        assert any(op.startswith("client:") for op in operations)
        assert any(op.startswith("server:") for op in operations)


class TestConnectionPool:
    def test_connections_reused_across_requests(self):
        testbed = MeshTestbed()
        testbed.add_service("echo", echo_handler())
        gateway = testbed.finish("echo")
        for _ in range(5):
            submit(testbed, gateway)
        created = gateway.sidecar.pool_connections_created
        assert created == 1, f"expected 1 pooled connection, created {created}"

    def test_concurrent_requests_grow_the_pool(self):
        testbed = MeshTestbed()
        testbed.add_service("echo", echo_handler(delay=0.050), workers=16)
        gateway = testbed.finish("echo")
        events = []
        for _ in range(4):
            request = HttpRequest(service="", path="/")
            events.append(gateway.submit(request))
        testbed.sim.run(until=testbed.sim.all_of(events))
        assert gateway.sidecar.pool_connections_created == 4


class TestRetries:
    def flaky_handler(self, failures_then_ok=2):
        state = {"failures_left": failures_then_ok}

        def handler(ctx, request):
            yield ctx.sleep(0.001)
            if state["failures_left"] > 0:
                state["failures_left"] -= 1
                return request.reply(HttpStatus.SERVICE_UNAVAILABLE)
            return request.reply(body_size=10)

        return handler

    def test_retry_turns_failure_into_success(self):
        config = MeshConfig(retry=RetryPolicy(max_attempts=3, backoff_base=0.001))
        testbed = MeshTestbed(mesh_config=config)
        testbed.add_service("flaky", self.flaky_handler(failures_then_ok=2))
        gateway = testbed.finish("flaky")
        _, response = submit(testbed, gateway)
        assert response.status == 200
        assert testbed.mesh.telemetry.retries_total >= 2

    def test_retry_budget_exhaustion(self):
        config = MeshConfig(retry=RetryPolicy(max_attempts=2, backoff_base=0.001))
        testbed = MeshTestbed(mesh_config=config)
        testbed.add_service("flaky", self.flaky_handler(failures_then_ok=10))
        gateway = testbed.finish("flaky")
        _, response = submit(testbed, gateway)
        assert response.status == HttpStatus.SERVICE_UNAVAILABLE

    def test_no_retry_on_4xx(self):
        def not_found(ctx, request):
            yield ctx.sleep(0.001)
            return request.reply(HttpStatus.NOT_FOUND)

        config = MeshConfig(retry=RetryPolicy(max_attempts=3))
        testbed = MeshTestbed(mesh_config=config)
        testbed.add_service("nf", not_found)
        gateway = testbed.finish("nf")
        _, response = submit(testbed, gateway)
        assert response.status == HttpStatus.NOT_FOUND
        assert testbed.mesh.telemetry.retries_total == 0


class TestTimeouts:
    def test_slow_handler_times_out(self):
        testbed = MeshTestbed(
            mesh_config=MeshConfig(retry=RetryPolicy(max_attempts=1))
        )
        testbed.add_service("slow", echo_handler(delay=5.0))
        gateway = testbed.finish("slow")
        request = HttpRequest(service="", path="/")
        event = gateway.submit(request, timeout=0.25)
        response = testbed.sim.run(until=event)
        assert response.status == HttpStatus.GATEWAY_TIMEOUT
        assert testbed.sim.now < 1.0  # gave up at the timeout, not at 5 s

    def test_per_try_timeout_with_recovery(self):
        # First try hits the slow replica; the retry (new connection)
        # can succeed if a fast replica exists.
        testbed = MeshTestbed(
            mesh_config=MeshConfig(
                retry=RetryPolicy(
                    max_attempts=3, per_try_timeout=0.2, backoff_base=0.001
                ),
                lb_name="round-robin",
            )
        )
        calls = {"n": 0}

        def sometimes_slow(ctx, request):
            calls["n"] += 1
            if calls["n"] == 1:
                yield ctx.sleep(5.0)
            else:
                yield ctx.sleep(0.001)
            return request.reply(body_size=10)

        testbed.add_service("mixed", sometimes_slow)
        gateway = testbed.finish("mixed")
        _, response = submit(testbed, gateway)
        assert response.status == 200
        assert testbed.mesh.telemetry.timeouts_total >= 1


class TestCircuitBreaker:
    def test_breaker_opens_on_dead_backend(self):
        def dead(ctx, request):
            yield ctx.sleep(0.001)
            return request.reply(HttpStatus.SERVICE_UNAVAILABLE)

        config = MeshConfig(retry=RetryPolicy(max_attempts=1))
        testbed = MeshTestbed(mesh_config=config)
        testbed.add_service("dead", dead)
        gateway = testbed.finish("dead")
        # Hammer it: after 5 consecutive failures the breaker opens and
        # later requests are rejected locally.
        for _ in range(8):
            submit(testbed, gateway)
        assert testbed.mesh.telemetry.circuit_breaker_rejections > 0


class TestRouting:
    def test_header_pinning_selects_version(self):
        testbed = MeshTestbed()
        testbed.add_service("split", echo_handler(body_size=111), version="v1")
        testbed.add_service("split", echo_handler(body_size=222), version="v2")
        gateway = testbed.finish("split")
        testbed.mesh.set_route_rules(
            "split",
            [
                RouteRule(
                    matches=(HeaderMatch("x-priority", "high"),),
                    destinations=(RouteDestination(subset=subset(version="v1")),),
                ),
                RouteRule(
                    matches=(HeaderMatch("x-priority", "low"),),
                    destinations=(RouteDestination(subset=subset(version="v2")),),
                ),
                RouteRule(),
            ],
        )
        _, high = submit(testbed, gateway, x_priority="high")
        _, low = submit(testbed, gateway, x_priority="low")
        assert high.body_size == 111
        assert low.body_size == 222

    def test_endpoint_distribution_respects_pinning(self):
        testbed = MeshTestbed()
        testbed.add_service("split", echo_handler(), version="v1")
        testbed.add_service("split", echo_handler(), version="v2")
        gateway = testbed.finish("split")
        testbed.mesh.set_route_rules(
            "split",
            [
                RouteRule(
                    matches=(HeaderMatch("x-priority", "high"),),
                    destinations=(RouteDestination(subset=subset(version="v1")),),
                ),
                RouteRule(),
            ],
        )
        for _ in range(6):
            submit(testbed, gateway, x_priority="high")
        distribution = testbed.mesh.telemetry.endpoint_distribution("split")
        assert distribution == {"split-v1-1": 6}


class TestHedging:
    def test_hedges_issued_for_slow_first_try(self):
        config = MeshConfig(hedge=HedgePolicy(delay=0.05, max_hedges=1))
        calls = {"n": 0}

        def skewed(ctx, request):
            calls["n"] += 1
            delay = 2.0 if calls["n"] == 1 else 0.001
            yield ctx.sleep(delay)
            return request.reply(body_size=10)

        testbed = MeshTestbed(mesh_config=config)
        testbed.add_service("skewed", skewed, replicas=2)
        gateway = testbed.finish("skewed")
        request = HttpRequest(service="", path="/")
        event = gateway.submit(request)
        response = testbed.sim.run(until=event)
        assert response.status == 200
        assert gateway.sidecar.hedges_issued == 1
        assert testbed.sim.now < 1.0  # did not wait for the slow try


class TestMtls:
    def test_mtls_works_and_costs_latency(self):
        def run(mtls_enabled):
            config = MeshConfig(mtls=MtlsContext(enabled=mtls_enabled))
            testbed = MeshTestbed(mesh_config=config)
            testbed.add_service("echo", echo_handler())
            gateway = testbed.finish("echo")
            start = testbed.sim.now
            _, response = submit(testbed, gateway)
            assert response.status == 200
            return testbed.sim.now - start

        plain = run(False)
        secured = run(True)
        assert secured > plain  # handshake cost on the first connection
