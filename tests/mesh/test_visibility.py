"""Coordinated bursty tracing (§3.2)."""

import pytest

from repro.mesh import BurstCoordinator, Tracer
from repro.sim import Simulator


def record_spans_continuously(sim, tracer, rate_hz=100.0, trace_prefix="t"):
    """A process creating one single-span trace every 1/rate seconds."""

    def generate():
        index = 0
        while True:
            span = tracer.start_span(
                f"{trace_prefix}-{index}", "svc", "op", now=sim.now
            )
            span.finish(sim.now)
            tracer.record(span)
            index += 1
            yield sim.timeout(1.0 / rate_hz)

    sim.process(generate())


class TestBurstSchedule:
    def test_bursts_align_to_period_boundaries(self):
        sim = Simulator()
        tracer = Tracer()
        coordinator = BurstCoordinator(sim, tracer, period=10.0, burst=1.0)
        coordinator.start()
        sim.run(until=35.0)
        starts = [window.start for window in coordinator.windows]
        assert starts == [0.0, 10.0, 20.0, 30.0]
        for window in coordinator.windows:
            assert window.end - window.start == pytest.approx(1.0)

    def test_alignment_regardless_of_start_time(self):
        """Two coordinators started at different times burst in the same
        windows — the coordination property."""
        sim = Simulator()
        tracer_a, tracer_b = Tracer(), Tracer()
        early = BurstCoordinator(sim, tracer_a, period=10.0, burst=1.0)
        early.start()
        late = BurstCoordinator(sim, tracer_b, period=10.0, burst=1.0)
        sim.call_later(13.7, late.start)
        sim.run(until=45.0)
        late_starts = [w.start for w in late.windows]
        early_starts = [w.start for w in early.windows]
        assert set(late_starts) <= set(early_starts)
        assert late_starts == [20.0, 30.0, 40.0]

    def test_capture_fraction(self):
        sim = Simulator()
        coordinator = BurstCoordinator(sim, Tracer(), period=20.0, burst=1.0)
        assert coordinator.capture_fraction() == 0.05

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            BurstCoordinator(sim, Tracer(), period=1.0, burst=1.0)
        with pytest.raises(ValueError):
            BurstCoordinator(sim, Tracer(), period=10.0, burst=0.0)
        with pytest.raises(ValueError):
            BurstCoordinator(sim, Tracer(), baseline_sample_rate=2.0)


class TestCapture:
    def test_everything_captured_during_burst_nothing_outside(self):
        sim = Simulator()
        tracer = Tracer()
        coordinator = BurstCoordinator(
            sim, tracer, period=10.0, burst=1.0, baseline_sample_rate=0.0
        )
        coordinator.start()
        record_spans_continuously(sim, tracer, rate_hz=100.0)
        sim.run(until=30.0)
        # ~100 spans per burst, 3 bursts, nothing in between.
        assert len(coordinator.windows) == 3
        for count in coordinator.spans_per_burst():
            assert 90 <= count <= 110
        total = tracer.spans_recorded
        assert total == sum(coordinator.spans_per_burst())

    def test_baseline_sampling_between_bursts(self):
        sim = Simulator()
        tracer = Tracer()
        coordinator = BurstCoordinator(
            sim, tracer, period=10.0, burst=1.0, baseline_sample_rate=1.0
        )
        coordinator.start()
        record_spans_continuously(sim, tracer, rate_hz=100.0)
        sim.run(until=20.0)
        # With a full baseline rate everything is captured always.
        assert tracer.spans_recorded == pytest.approx(2000, rel=0.05)

    def test_listeners_called_in_lockstep(self):
        sim = Simulator()

        class Collector:
            def __init__(self):
                self.events = []

            def burst_started(self, index, now):
                self.events.append(("start", index, now))

            def burst_ended(self, index, now):
                self.events.append(("end", index, now))

        coordinator = BurstCoordinator(sim, Tracer(), period=5.0, burst=0.5)
        collector = Collector()
        coordinator.add_listener(collector)
        coordinator.start()
        sim.run(until=11.0)
        assert collector.events == [
            ("start", 0, 0.0),
            ("end", 0, 0.5),
            ("start", 1, 5.0),
            ("end", 1, 5.5),
            ("start", 2, 10.0),
            ("end", 2, 10.5),
        ]

    def test_bursting_flag(self):
        sim = Simulator()
        coordinator = BurstCoordinator(sim, Tracer(), period=10.0, burst=1.0)
        coordinator.start()
        sim.run(until=0.5)
        assert coordinator.bursting
        sim.run(until=2.0)
        assert not coordinator.bursting
