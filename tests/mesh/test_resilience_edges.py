"""Edge cases of the resilience machinery: retry budgets, backoff caps,
per-route overrides, priority-aware hedging and loser cancellation."""

import numpy as np
import pytest

from helpers import MeshTestbed, echo_handler

from repro.http import HttpRequest, HttpStatus
from repro.http.headers import PRIORITY
from repro.mesh import (
    HedgePolicy,
    MeshConfig,
    RetryPolicy,
    RouteRule,
)


def failing_handler(status=HttpStatus.SERVICE_UNAVAILABLE):
    """A handler that always errors (retryable by default)."""

    def handler(ctx, request):
        if False:
            yield
        return request.reply(status)

    return handler


class TestRetryPolicyUnits:
    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_backoff_respects_max_delay_cap(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_max=0.1, jitter=0.5)
        rng = np.random.default_rng(0)
        for attempt in range(1, 8):
            assert policy.backoff(attempt) <= 0.1
            assert policy.backoff(attempt, rng) <= 0.1

    def test_jitter_bounds(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_max=10.0, jitter=0.5)
        rng = np.random.default_rng(0)
        for _ in range(100):
            delay = policy.backoff(1, rng)
            assert 0.05 <= delay <= 0.1

    def test_no_rng_means_no_jitter(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_max=10.0, jitter=0.5)
        assert policy.backoff(1) == 0.1
        assert policy.backoff(2) == 0.2


class TestHedgePolicyUnits:
    def test_applies_to_everything_by_default(self):
        policy = HedgePolicy()
        assert policy.applies_to(None)
        assert policy.applies_to("low")

    def test_only_priorities_gates(self):
        policy = HedgePolicy(only_priorities=frozenset({"high"}))
        assert policy.applies_to("high")
        assert not policy.applies_to("low")
        assert not policy.applies_to(None)


class TestRetryBudget:
    def test_exhaustion_surfaces_original_error(self):
        """When the budget runs out, the caller sees the 503 that kept us
        retrying — not a synthetic 504."""
        config = MeshConfig(
            retry=RetryPolicy(max_attempts=3, backoff_base=0.005)
        )
        testbed = MeshTestbed(mesh_config=config)
        testbed.add_service("svc", failing_handler(), replicas=2)
        gateway = testbed.finish("svc")
        event = gateway.submit(HttpRequest(service=""))
        response = testbed.sim.run(until=event)
        assert response.status == HttpStatus.SERVICE_UNAVAILABLE
        micro = testbed.microservices["svc"]
        assert sum(m.requests_handled for m in micro) == 3

    def test_timeout_during_retry_records_one_request(self):
        """Per-try timeouts during a retried request count one logical
        RequestRecord (with the retry count), not one per try."""
        config = MeshConfig(
            retry=RetryPolicy(
                max_attempts=3, per_try_timeout=0.05, backoff_base=0.005
            )
        )
        testbed = MeshTestbed(mesh_config=config)
        testbed.add_service("svc", echo_handler(delay=5.0), replicas=2)
        gateway = testbed.finish("svc")
        event = gateway.submit(HttpRequest(service=""), timeout=1.0)
        response = testbed.sim.run(until=event)
        assert response.status == HttpStatus.GATEWAY_TIMEOUT
        telemetry = testbed.mesh.telemetry
        gateway_records = [
            r for r in telemetry.records if r.destination == "svc"
        ]
        assert len(gateway_records) == 1
        assert gateway_records[0].retries == 2
        assert telemetry.timeouts_total >= 2


class TestPerRouteResilience:
    def test_route_retry_overrides_mesh_budget(self):
        config = MeshConfig(
            retry=RetryPolicy(max_attempts=4, backoff_base=0.005)
        )
        testbed = MeshTestbed(mesh_config=config)
        testbed.add_service("svc", failing_handler(), replicas=2)
        gateway = testbed.finish("svc")
        testbed.mesh.set_route_rules(
            "svc", [RouteRule(retry=RetryPolicy(max_attempts=1))]
        )
        event = gateway.submit(HttpRequest(service=""))
        response = testbed.sim.run(until=event)
        assert response.status == HttpStatus.SERVICE_UNAVAILABLE
        micro = testbed.microservices["svc"]
        assert sum(m.requests_handled for m in micro) == 1

    def test_route_timeout_caps_deadline(self):
        testbed = MeshTestbed(
            mesh_config=MeshConfig(retry=RetryPolicy(max_attempts=1))
        )
        testbed.add_service("svc", echo_handler(delay=5.0))
        gateway = testbed.finish("svc")
        testbed.mesh.set_route_rules("svc", [RouteRule(timeout=0.2)])
        event = gateway.submit(HttpRequest(service=""))
        response = testbed.sim.run(until=event)
        assert response.status == HttpStatus.GATEWAY_TIMEOUT
        assert testbed.sim.now < 1.0

    def test_explicit_timeout_wins_over_route(self):
        testbed = MeshTestbed(
            mesh_config=MeshConfig(retry=RetryPolicy(max_attempts=1))
        )
        testbed.add_service("svc", echo_handler(delay=0.3))
        gateway = testbed.finish("svc")
        testbed.mesh.set_route_rules("svc", [RouteRule(timeout=0.05)])
        event = gateway.submit(HttpRequest(service=""), timeout=2.0)
        response = testbed.sim.run(until=event)
        assert response.status == HttpStatus.OK


class TestHedging:
    def make(self, hedge):
        testbed = MeshTestbed(mesh_config=MeshConfig(hedge=hedge))
        # v1 fast, v2 pathologically slow: a hedge against the other
        # replica always beats a try stuck on v2.
        testbed.add_service("svc", echo_handler(delay=0.001), version="v1")
        testbed.add_service("svc", echo_handler(delay=3.0), version="v2")
        return testbed, testbed.finish("svc")

    def test_hedge_cancels_the_loser(self):
        testbed, gateway = self.make(HedgePolicy(delay=0.05, max_hedges=1))
        # Two sequential requests: round-robin guarantees exactly one of
        # them lands its primary try on the slow replica and must hedge.
        for _ in range(2):
            event = gateway.submit(HttpRequest(service=""))
            response = testbed.sim.run(until=event)
            assert response.status == HttpStatus.OK
        sidecars = list(testbed.mesh.sidecars)
        assert sum(s.hedges_issued for s in sidecars) == 1
        assert sum(s.hedges_cancelled for s in sidecars) == 1
        # Both winners resolved well before the slow replica's 3 s.
        assert testbed.sim.now < 1.0

    def test_priority_gate_blocks_unmarked_requests(self):
        hedge = HedgePolicy(
            delay=0.05, max_hedges=1, only_priorities=frozenset({"high"})
        )
        testbed, gateway = self.make(hedge)
        event = gateway.submit(HttpRequest(service=""), timeout=10.0)
        testbed.sim.run(until=event)
        assert sum(s.hedges_issued for s in testbed.mesh.sidecars) == 0

    def test_priority_gate_admits_ls_requests(self):
        hedge = HedgePolicy(
            delay=0.05, max_hedges=1, only_priorities=frozenset({"high"})
        )
        testbed, gateway = self.make(hedge)
        for _ in range(2):
            request = HttpRequest(service="")
            request.headers[PRIORITY] = "high"
            event = gateway.submit(request)
            response = testbed.sim.run(until=event)
            assert response.status == HttpStatus.OK
        assert sum(s.hedges_issued for s in testbed.mesh.sidecars) == 1
