"""Multiplexed sidecar channels (§3.6) end to end in the mesh."""

import pytest

from helpers import MeshTestbed, echo_handler

from repro.core import CrossLayerPolicy, PriorityPolicyHooks
from repro.http import HttpRequest
from repro.mesh import MeshConfig


def mux_testbed(**config_kwargs):
    config = MeshConfig(use_mux=True, **config_kwargs)
    return MeshTestbed(mesh_config=config)


class TestMuxBasics:
    def test_round_trip(self):
        testbed = mux_testbed()
        testbed.add_service("echo", echo_handler(body_size=777))
        gateway = testbed.finish("echo")
        event = gateway.submit(HttpRequest(service=""))
        response = testbed.sim.run(until=event)
        assert response.status == 200
        assert response.body_size == 777

    def test_sequential_requests_share_one_connection(self):
        testbed = mux_testbed()
        testbed.add_service("echo", echo_handler())
        gateway = testbed.finish("echo")
        for _ in range(10):
            testbed.sim.run(until=gateway.submit(HttpRequest(service="")))
        assert gateway.sidecar.pool_connections_created == 1

    def test_concurrent_requests_share_one_connection(self):
        """The headline difference vs the pool: concurrency without
        extra connections."""
        testbed = mux_testbed()
        testbed.add_service("echo", echo_handler(delay=0.05), workers=16)
        gateway = testbed.finish("echo")
        events = [gateway.submit(HttpRequest(service="")) for _ in range(8)]
        testbed.sim.run(until=testbed.sim.all_of(events))
        assert all(e.value.status == 200 for e in events)
        assert gateway.sidecar.pool_connections_created == 1

    def test_responses_correlated_not_ordered(self):
        """A fast request issued after a slow one returns first."""
        testbed = mux_testbed()
        calls = {"n": 0}

        def mixed_speed(ctx, request):
            calls["n"] += 1
            yield ctx.sleep(1.0 if calls["n"] == 1 else 0.001)
            return request.reply(body_size=calls["n"])

        testbed.add_service("svc", mixed_speed, workers=8)
        gateway = testbed.finish("svc")
        slow = gateway.submit(HttpRequest(service=""))
        testbed.sim.run(until=0.01)
        fast = gateway.submit(HttpRequest(service=""))
        testbed.sim.run(until=fast)
        assert not slow.processed  # fast finished while slow still runs
        testbed.sim.run(until=slow)
        assert slow.value.status == 200

    def test_timeout_abandons_stream_not_channel(self):
        testbed = mux_testbed()
        calls = {"n": 0}

        def first_slow(ctx, request):
            calls["n"] += 1
            yield ctx.sleep(10.0 if calls["n"] == 1 else 0.001)
            return request.reply(body_size=1)

        testbed.add_service("svc", first_slow)
        gateway = testbed.finish("svc")
        timed_out = gateway.submit(HttpRequest(service=""), timeout=0.2)
        response = testbed.sim.run(until=timed_out)
        assert response.status == 504
        # Channel survives: the next request works on the same connection.
        ok = gateway.submit(HttpRequest(service=""))
        assert testbed.sim.run(until=ok).status == 200
        assert gateway.sidecar.pool_connections_created == 1


class TestMuxPriority:
    def test_ls_response_overtakes_bulk_on_shared_channel(self):
        """The cross-layer payoff of mux channels: with priority-aware
        stream scheduling, a small HIGH response is not blocked behind
        a multi-megabyte LOW response on the same connection."""
        # A slow pod link so the 5 MB response occupies the wire long
        # enough for the HIGH response to need to overtake it.
        testbed = MeshTestbed(
            mesh_config=MeshConfig(use_mux=True),
            pod_link_rate_bps=100_000_000,
        )
        testbed.mesh.set_policy(PriorityPolicyHooks(CrossLayerPolicy.disabled()))

        def sized_by_priority(ctx, request):
            yield ctx.sleep(0.001)
            if request.headers.get("x-priority") == "low":
                return request.reply(body_size=5_000_000)
            return request.reply(body_size=5_000)

        testbed.add_service("svc", sized_by_priority, workers=8)
        gateway = testbed.finish("svc")
        bulk = HttpRequest(service="")
        bulk.headers["x-priority"] = "low"
        bulk_event = gateway.submit(bulk)
        testbed.sim.run(until=0.01)  # bulk response transfer begins
        quick = HttpRequest(service="")
        quick.headers["x-priority"] = "high"
        quick_event = gateway.submit(quick)
        testbed.sim.run(until=quick_event)
        high_done = testbed.sim.now
        testbed.sim.run(until=bulk_event)
        low_done = testbed.sim.now
        assert high_done < low_done / 3, (high_done, low_done)


class TestMuxWithFeatures:
    def test_mux_with_retries(self):
        from repro.mesh import RetryPolicy

        testbed = mux_testbed(retry=RetryPolicy(max_attempts=3, backoff_base=0.01))
        calls = {"n": 0}

        def flaky(ctx, request):
            calls["n"] += 1
            yield ctx.sleep(0.001)
            if calls["n"] <= 2:
                return request.reply(503)
            return request.reply(body_size=1)

        testbed.add_service("svc", flaky)
        gateway = testbed.finish("svc")
        response = testbed.sim.run(until=gateway.submit(HttpRequest(service="")))
        assert response.status == 200

    def test_mux_with_inbound_queue(self):
        testbed = mux_testbed(inbound_concurrency=2)
        testbed.add_service("svc", echo_handler(delay=0.02))
        gateway = testbed.finish("svc")
        events = [gateway.submit(HttpRequest(service="")) for _ in range(6)]
        testbed.sim.run(until=testbed.sim.all_of(events))
        assert all(e.value.status == 200 for e in events)

    def test_mux_telemetry_and_traces_intact(self):
        testbed = mux_testbed()
        testbed.add_service("echo", echo_handler())
        gateway = testbed.finish("echo")
        testbed.sim.run(until=gateway.submit(HttpRequest(service="")))
        assert testbed.mesh.telemetry.request_count(destination="echo") == 1
        assert len(testbed.mesh.tracer.traces) == 1
