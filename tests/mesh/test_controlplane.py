"""Control plane: discovery pushes, config distribution, certificates."""

from helpers import MeshTestbed, echo_handler

from repro.mesh import PolicyHooks, RouteRule


class TestDiscovery:
    def test_sidecar_bootstraps_with_current_endpoints(self):
        testbed = MeshTestbed()
        testbed.add_service("a", echo_handler())
        testbed.add_service("b", echo_handler())
        # The b-sidecar bootstrapped after both services existed.
        b_sidecar = testbed.mesh.sidecars[-1]
        assert set(b_sidecar.endpoints) >= {"a", "b"}
        # The a-sidecar learns about b via a discovery push.
        testbed.sim.run(until=testbed.mesh.config.config_push_delay + 0.01)
        assert set(testbed.mesh.sidecars[0].endpoints) >= {"a", "b"}

    def test_scale_up_is_pushed_after_delay(self):
        testbed = MeshTestbed()
        testbed.add_service("a", echo_handler())
        sidecar = testbed.mesh.sidecars[0]
        assert len(sidecar.endpoints["a"]) == 1
        testbed.sim.run(until=1.0)
        testbed.cluster.scale("a-v1", 3)
        # Not yet pushed (propagation delay).
        assert len(sidecar.endpoints["a"]) == 1
        testbed.sim.run(until=1.0 + testbed.mesh.config.config_push_delay + 0.01)
        assert len(sidecar.endpoints["a"]) == 3
        assert testbed.mesh.control_plane.pushes >= 1

    def test_scale_down_propagates(self):
        testbed = MeshTestbed()
        testbed.add_service("a", echo_handler(), replicas=3)
        sidecar = testbed.mesh.sidecars[0]
        testbed.sim.run(until=0.5)
        testbed.cluster.scale("a-v1", 1)
        testbed.sim.run(until=1.0)
        assert len(sidecar.endpoints["a"]) == 1


class TestConfigDistribution:
    def test_routes_pushed_to_all_sidecars(self):
        testbed = MeshTestbed()
        testbed.add_service("a", echo_handler())
        testbed.add_service("b", echo_handler())
        testbed.mesh.set_route_rules("a", [RouteRule()], immediate=True)
        for sidecar in testbed.mesh.sidecars:
            assert len(sidecar.routes.rules_for("a")) == 1

    def test_late_sidecar_gets_existing_routes(self):
        testbed = MeshTestbed()
        testbed.add_service("a", echo_handler())
        testbed.mesh.set_route_rules("a", [RouteRule()], immediate=True)
        testbed.add_service("late", echo_handler())
        late_sidecar = testbed.mesh.sidecars[-1]
        assert len(late_sidecar.routes.rules_for("a")) == 1

    def test_delayed_route_push(self):
        testbed = MeshTestbed()
        testbed.add_service("a", echo_handler())
        testbed.sim.run(until=1.0)
        testbed.mesh.set_route_rules("a", [RouteRule()], immediate=False)
        sidecar = testbed.mesh.sidecars[0]
        assert sidecar.routes.rules_for("a") == []
        testbed.sim.run(until=1.2)
        assert len(sidecar.routes.rules_for("a")) == 1


class TestPolicyInstallation:
    def test_set_policy_reaches_existing_and_new_sidecars(self):
        testbed = MeshTestbed()
        testbed.add_service("a", echo_handler())
        policy = PolicyHooks()
        testbed.mesh.set_policy(policy)
        assert testbed.mesh.sidecars[0].policy is policy
        testbed.add_service("b", echo_handler())
        assert testbed.mesh.sidecars[-1].policy is policy


class TestCertificates:
    def test_identity_issued_per_injected_service(self):
        testbed = MeshTestbed()
        testbed.add_service("reviews", echo_handler())
        ca = testbed.mesh.control_plane.ca
        assert ca.current("spiffe://cluster.local/sa/reviews") is not None

    def test_sidecar_container_added_to_pod(self):
        testbed = MeshTestbed()
        testbed.add_service("a", echo_handler())
        pod = testbed.cluster.pods_of("a-v1")[0]
        assert "istio-proxy" in pod.containers

    def test_double_injection_rejected(self):
        import pytest

        testbed = MeshTestbed()
        testbed.add_service("a", echo_handler())
        pod = testbed.cluster.pods_of("a-v1")[0]
        with pytest.raises(ValueError):
            testbed.mesh.inject_pod(pod)
