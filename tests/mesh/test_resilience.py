"""Retry policies, hedging policies, circuit breakers."""

import pytest

from repro.mesh import CircuitBreaker, HedgePolicy, RetryPolicy


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(backoff_base=0.01, backoff_max=0.05)
        assert policy.backoff(1) == 0.01
        assert policy.backoff(2) == 0.02
        assert policy.backoff(3) == 0.04
        assert policy.backoff(4) == 0.05  # capped

    def test_should_retry_on_retryable_status(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(1, 503)
        assert policy.should_retry(2, 502)
        assert not policy.should_retry(3, 503)  # budget exhausted

    def test_should_retry_on_timeout(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.should_retry(1, None)

    def test_no_retry_on_success_or_client_error(self):
        policy = RetryPolicy()
        assert not policy.should_retry(1, 200)
        assert not policy.should_retry(1, 404)

    def test_invalid_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestHedgePolicy:
    def test_valid(self):
        policy = HedgePolicy(delay=0.05, max_hedges=2)
        assert policy.delay == 0.05

    def test_invalid(self):
        with pytest.raises(ValueError):
            HedgePolicy(delay=-1)
        with pytest.raises(ValueError):
            HedgePolicy(max_hedges=-1)


class TestCircuitBreaker:
    def make(self, threshold=3, recovery=1.0):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=threshold,
            recovery_time=recovery,
            clock=lambda: clock["now"],
        )
        return breaker, clock

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self.make(threshold=3)
        for _ in range(2):
            breaker.on_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.on_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_failure_count(self):
        breaker, _ = self.make(threshold=3)
        breaker.on_failure()
        breaker.on_failure()
        breaker.on_success()
        breaker.on_failure()
        breaker.on_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_after_recovery_time(self):
        breaker, clock = self.make(threshold=1, recovery=1.0)
        breaker.on_failure()
        assert not breaker.allow()
        clock["now"] = 1.5
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # probe permitted

    def test_half_open_probe_success_closes(self):
        breaker, clock = self.make(threshold=1)
        breaker.on_failure()
        clock["now"] = 2.0
        assert breaker.allow()
        breaker.on_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = self.make(threshold=1, recovery=1.0)
        breaker.on_failure()
        clock["now"] = 2.0
        assert breaker.allow()
        breaker.on_failure()
        assert breaker.state == CircuitBreaker.OPEN
        # The open period restarts from the probe failure.
        clock["now"] = 2.5
        assert not breaker.allow()
        clock["now"] = 3.1
        assert breaker.allow()

    def test_rejection_counter(self):
        breaker, _ = self.make(threshold=1)
        breaker.on_failure()
        breaker.allow()
        breaker.allow()
        assert breaker.rejections == 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_time=0)
