"""Outlier detection: success-rate ejection."""

import pytest

from helpers import MeshTestbed, echo_handler

from repro.http import HttpRequest
from repro.mesh import MeshConfig, RetryPolicy
from repro.mesh.outlier import OutlierConfig, OutlierDetector


class TestDetectorUnit:
    def test_ejects_after_threshold(self):
        detector = OutlierDetector(
            OutlierConfig(min_requests=10, error_rate_threshold=0.5)
        )
        for i in range(10):
            detector.record("10.0.0.1", ok=(i % 2 == 0), now=float(i) * 0.1)
        assert detector.is_ejected("10.0.0.1", now=1.0)
        assert detector.ejections == 1

    def test_no_judgement_on_thin_evidence(self):
        detector = OutlierDetector(OutlierConfig(min_requests=20))
        for i in range(10):
            detector.record("10.0.0.1", ok=False, now=float(i) * 0.01)
        assert not detector.is_ejected("10.0.0.1", now=0.2)

    def test_ejection_expires(self):
        detector = OutlierDetector(
            OutlierConfig(min_requests=5, error_rate_threshold=0.5, ejection_time=2.0)
        )
        for i in range(5):
            detector.record("10.0.0.1", ok=False, now=0.1 * i)
        assert detector.is_ejected("10.0.0.1", now=1.0)
        assert not detector.is_ejected("10.0.0.1", now=3.0)

    def test_window_prunes_old_outcomes(self):
        detector = OutlierDetector(
            OutlierConfig(window=1.0, min_requests=5, error_rate_threshold=0.5)
        )
        # Five old failures, outside the window by the time we judge.
        for i in range(5):
            detector.record("10.0.0.1", ok=False, now=0.1 * i)
        detector._stats["10.0.0.1"].ejected_until = float("-inf")  # reset
        detector.record("10.0.0.1", ok=True, now=5.0)  # prunes the past
        assert detector.error_rate("10.0.0.1", now=5.0) == 0.0

    def test_max_ejection_fraction_panic_mode(self):
        detector = OutlierDetector(
            OutlierConfig(
                min_requests=5, error_rate_threshold=0.5,
                max_ejection_fraction=0.5,
            )
        )
        for ip in ("10.0.0.1", "10.0.0.2", "10.0.0.3"):
            for i in range(5):
                detector.record(ip, ok=False, now=0.1 * i)
        healthy = detector.filter_healthy(
            ["10.0.0.1", "10.0.0.2", "10.0.0.3"], now=1.0
        )
        # All three are nominally ejected, but at most 50% (=1) may be.
        assert len(healthy) >= 2

    def test_unknown_endpoint_healthy(self):
        detector = OutlierDetector()
        assert not detector.is_ejected("10.9.9.9", now=0.0)
        assert detector.error_rate("10.9.9.9", now=0.0) == 0.0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            OutlierConfig(window=0)
        with pytest.raises(ValueError):
            OutlierConfig(error_rate_threshold=0)
        with pytest.raises(ValueError):
            OutlierConfig(max_ejection_fraction=1.5)


class TestDetectorInMesh:
    def test_flaky_replica_ejected_traffic_shifts(self):
        """One of two replicas fails half its requests; after ejection
        all traffic lands on the healthy one."""
        config = MeshConfig(
            retry=RetryPolicy(max_attempts=1),
            outlier=OutlierConfig(
                min_requests=6, error_rate_threshold=0.4, ejection_time=60.0
            ),
        )
        testbed = MeshTestbed(mesh_config=config)
        calls = {"n": 0}

        def flaky(ctx, request):
            calls["n"] += 1
            yield ctx.sleep(0.001)
            if calls["n"] % 2 == 0:
                return request.reply(503)
            return request.reply(body_size=1)

        testbed.add_service("svc", flaky, version="v1")
        testbed.add_service("svc", echo_handler(body_size=1), version="v2")
        gateway = testbed.finish("svc")
        # Warm-up phase: both replicas see traffic, v1 accumulates errors.
        statuses = []
        for _ in range(30):
            event = gateway.submit(HttpRequest(service=""))
            statuses.append(testbed.sim.run(until=event).status)
        # After ejection everything succeeds (healthy replica only).
        late = []
        for _ in range(10):
            event = gateway.submit(HttpRequest(service=""))
            late.append(testbed.sim.run(until=event).status)
        assert all(status == 200 for status in late), late
        distribution = testbed.mesh.telemetry.endpoint_distribution("svc")
        assert distribution["svc-v2-1"] > distribution["svc-v1-1"]

    def test_ejection_is_data_plane_independent(self):
        """The same flaky replica is ejected under the ambient plane,
        where the hop is delivered in-process through the shared node
        proxy instead of per-pod sidecars — outlier detection judges
        outcomes, not the path the bytes took."""
        config = MeshConfig(
            data_plane="ambient",
            retry=RetryPolicy(max_attempts=1),
            outlier=OutlierConfig(
                min_requests=6, error_rate_threshold=0.4, ejection_time=60.0
            ),
        )
        testbed = MeshTestbed(mesh_config=config)
        calls = {"n": 0}

        def flaky(ctx, request):
            calls["n"] += 1
            yield ctx.sleep(0.001)
            if calls["n"] % 2 == 0:
                return request.reply(503)
            return request.reply(body_size=1)

        testbed.add_service("svc", flaky, version="v1")
        testbed.add_service("svc", echo_handler(body_size=1), version="v2")
        gateway = testbed.finish("svc")
        for _ in range(30):
            event = gateway.submit(HttpRequest(service=""))
            testbed.sim.run(until=event)
        late = []
        for _ in range(10):
            event = gateway.submit(HttpRequest(service=""))
            late.append(testbed.sim.run(until=event).status)
        assert all(status == 200 for status in late), late
        distribution = testbed.mesh.telemetry.endpoint_distribution("svc")
        assert distribution["svc-v2-1"] > distribution["svc-v1-1"]
        # And the traffic really rode the shared proxy, not the wire.
        node = testbed.cluster.nodes[0]
        assert node.proxy is not None and node.proxy.traversals > 0


class TestDetectorLifecycle:
    def test_re_ejection_after_expiry(self):
        detector = OutlierDetector(
            OutlierConfig(
                window=100.0, min_requests=5,
                error_rate_threshold=0.5, ejection_time=1.0,
            )
        )
        for i in range(5):
            detector.record("10.0.0.1", ok=False, now=0.1 * i)
        assert detector.is_ejected("10.0.0.1", now=0.5)
        assert not detector.is_ejected("10.0.0.1", now=2.0)
        # Ejection wiped the history (fresh slate on parole), so the
        # endpoint must re-earn its ejection with min_requests evidence.
        for i in range(5):
            detector.record("10.0.0.1", ok=False, now=2.5 + 0.1 * i)
        assert detector.is_ejected("10.0.0.1", now=3.0)
        assert detector.ejections == 2

    def test_successes_dilute_error_rate_below_threshold(self):
        detector = OutlierDetector(
            OutlierConfig(min_requests=4, error_rate_threshold=0.5)
        )
        detector.record("10.0.0.1", ok=False, now=0.0)
        for i in range(5):
            detector.record("10.0.0.1", ok=True, now=0.3 + 0.1 * i)
        assert detector.error_rate("10.0.0.1", now=1.0) == pytest.approx(1 / 6)
        assert not detector.is_ejected("10.0.0.1", now=1.0)

    def test_filter_healthy_passes_all_when_clean(self):
        detector = OutlierDetector()
        ips = ["10.0.0.1", "10.0.0.2"]
        for ip in ips:
            detector.record(ip, ok=True, now=0.0)
        assert detector.filter_healthy(ips, now=0.1) == ips


class TestOutlierWithOverloadPosture:
    def test_ejection_still_shifts_traffic_with_leveling_queues(self):
        """Outlier ejection and the overload posture's bounded leveling
        queues are independent defenses; enabling the second must not
        blind the first."""
        from repro.overload import OverloadConfig

        config = MeshConfig(
            retry=RetryPolicy(max_attempts=1),
            outlier=OutlierConfig(
                min_requests=6, error_rate_threshold=0.4, ejection_time=60.0
            ),
            overload=OverloadConfig(
                gate=None, concurrency=2, queue_depth=32,
                retry_budget_ratio=None,
            ),
        )
        testbed = MeshTestbed(mesh_config=config)
        calls = {"n": 0}

        def flaky(ctx, request):
            calls["n"] += 1
            yield ctx.sleep(0.001)
            if calls["n"] % 2 == 0:
                return request.reply(503)
            return request.reply(body_size=1)

        testbed.add_service("svc", flaky, version="v1")
        testbed.add_service("svc", echo_handler(body_size=1), version="v2")
        gateway = testbed.finish("svc")
        statuses = []
        for _ in range(40):
            event = gateway.submit(HttpRequest(service=""))
            statuses.append(testbed.sim.run(until=event).status)
        # Light sequential load: the queues never overflow (no 429s)...
        assert 429 not in statuses
        # ...and the flaky replica still gets ejected.
        assert all(status == 200 for status in statuses[-10:])
        distribution = testbed.mesh.telemetry.endpoint_distribution("svc")
        assert distribution["svc-v2-1"] > distribution["svc-v1-1"]
