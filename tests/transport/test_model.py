"""The redesigned transport API: TransportSpec, FidelityPolicy, and the
public surface of ``repro.transport``."""

import dataclasses

import pytest

import repro.transport as transport
from repro.net import Network
from repro.sim import Simulator
from repro.transport import (
    FidelityPolicy,
    FluidModel,
    PacketModel,
    TransportConfig,
    TransportModel,
    TransportSpec,
)
from repro.transport.model import (
    FIDELITY_FLUID,
    FIDELITY_HYBRID,
    FIDELITY_PACKET,
)


def build_network(rate_bps=1e9, delay=0.001):
    sim = Simulator()
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.connect("a", "b", rate_bps=rate_bps, delay=delay)
    net.bind("10.1.0.1", "a")
    net.bind("10.1.0.2", "b")
    net.build_routes()
    return sim, net


class TestTransportSpec:
    def test_defaults_are_packet_fidelity(self):
        spec = TransportSpec()
        assert spec.fidelity == FIDELITY_PACKET
        assert not spec.wants_fluid
        assert spec.mux is False

    def test_frozen(self):
        spec = TransportSpec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.mss = 9000

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError, match="fidelity"):
            TransportSpec(fidelity="quantum")

    @pytest.mark.parametrize("fidelity", [FIDELITY_FLUID, FIDELITY_HYBRID])
    def test_wants_fluid(self, fidelity):
        assert TransportSpec(fidelity=fidelity).wants_fluid

    def test_validation_bounds(self):
        with pytest.raises(ValueError):
            TransportSpec(mss=0)
        with pytest.raises(ValueError):
            TransportSpec(min_rto=0.5, max_rto=0.1)
        with pytest.raises(ValueError):
            TransportSpec(contention_threshold=0.0)
        with pytest.raises(ValueError):
            TransportSpec(utilization_window=-1.0)

    def test_from_spec_maps_every_knob(self):
        spec = TransportSpec(
            fidelity=FIDELITY_HYBRID,
            mss=9000,
            header_bytes=66,
            ack_bytes=50,
            initial_cwnd_segments=4,
            min_rto=0.005,
            max_rto=1.0,
            ecn_enabled=False,
            contention_threshold=0.5,
            utilization_window=0.1,
            contention_backlog_bytes=1_000,
        )
        config = TransportConfig.from_spec(spec)
        assert config.fidelity == FIDELITY_HYBRID
        assert config.mss == 9000
        assert config.header_bytes == 66
        assert config.ack_bytes == 50
        assert config.initial_cwnd_segments == 4
        assert config.min_rto == 0.005
        assert config.max_rto == 1.0
        assert config.ecn_enabled is False
        assert config.contention_threshold == 0.5
        assert config.utilization_window == 0.1
        assert config.contention_backlog_bytes == 1_000

    def test_transport_config_rejects_unknown_fidelity(self):
        with pytest.raises(ValueError, match="fidelity"):
            TransportConfig(fidelity="quantum")


class TestPublicSurface:
    def test_all_names_importable(self):
        for name in transport.__all__:
            assert hasattr(transport, name), name

    def test_api_redesign_names_exported(self):
        for name in (
            "TransportModel",
            "PacketModel",
            "FluidModel",
            "FidelityPolicy",
            "TransportSpec",
        ):
            assert name in transport.__all__

    def test_base_model_is_abstract(self):
        with pytest.raises(NotImplementedError):
            TransportModel().create_connection(None)


class TestFidelityPolicy:
    def test_idle_path_runs_fluid_under_hybrid(self):
        sim, net = build_network()
        policy = FidelityPolicy(net, TransportSpec(fidelity=FIDELITY_HYBRID))
        assert policy.mode_for("10.1.0.1", "10.1.0.2", sim.now) == FIDELITY_FLUID
        assert policy.fluid_decisions == 1

    def test_packet_spec_always_packet(self):
        sim, net = build_network()
        policy = FidelityPolicy(net, TransportSpec())
        assert policy.mode_for("10.1.0.1", "10.1.0.2", sim.now) == FIDELITY_PACKET

    def test_mux_alpn_always_packet(self):
        sim, net = build_network()
        policy = FidelityPolicy(net, TransportSpec(fidelity=FIDELITY_FLUID))
        assert policy.mode_for("10.1.0.1", "10.1.0.2", sim.now, alpn="mux") == FIDELITY_PACKET
        assert policy.mode_for("10.1.0.1", "10.1.0.2", sim.now) == FIDELITY_FLUID

    def test_backlog_drops_to_packet(self):
        sim, net = build_network()
        policy = FidelityPolicy(net, TransportSpec(fidelity=FIDELITY_HYBRID))
        iface = policy.path("10.1.0.1", "10.1.0.2")[0]
        iface.qdisc._backlog = policy.spec.contention_backlog_bytes + 1
        assert policy.mode_for("10.1.0.1", "10.1.0.2", sim.now) == FIDELITY_PACKET
        assert policy.packet_decisions == 1
        iface.qdisc._backlog = 0
        assert policy.mode_for("10.1.0.1", "10.1.0.2", sim.now) == FIDELITY_FLUID

    def test_windowed_utilization_drops_to_packet(self):
        sim, net = build_network()
        spec = TransportSpec(fidelity=FIDELITY_HYBRID, utilization_window=0.1)
        policy = FidelityPolicy(net, spec)
        iface = policy.path("10.1.0.1", "10.1.0.2")[0]
        # Prime the sampling window at t=0, then report a busy link.
        assert policy.link_utilization(iface, 0.0) == 0.0
        iface.busy_time += 0.09
        assert policy.link_utilization(iface, 0.1) >= spec.contention_threshold
        assert policy.mode_for("10.1.0.1", "10.1.0.2", 0.1) == FIDELITY_PACKET

    def test_reverse_path_contention_counts(self):
        sim, net = build_network()
        policy = FidelityPolicy(net, TransportSpec(fidelity=FIDELITY_HYBRID))
        reverse_iface = policy.path("10.1.0.2", "10.1.0.1")[0]
        reverse_iface.qdisc._backlog = 10**6
        assert policy.mode_for("10.1.0.1", "10.1.0.2", sim.now) == FIDELITY_PACKET

    def test_path_cache_invalidates_on_route_rebuild(self):
        sim, net = build_network()
        policy = FidelityPolicy(net, TransportSpec(fidelity=FIDELITY_HYBRID))
        first = policy.path("10.1.0.1", "10.1.0.2")
        assert policy.path("10.1.0.1", "10.1.0.2") is first  # cached
        net.build_routes()  # bumps routes_generation
        second = policy.path("10.1.0.1", "10.1.0.2")
        assert second is not first
        assert [i.owner.name for i in second] == [i.owner.name for i in first]

    def test_loopback_path_is_empty(self):
        sim, net = build_network()
        policy = FidelityPolicy(net, TransportSpec(fidelity=FIDELITY_HYBRID))
        assert policy.path("10.1.0.1", "10.1.0.1") == ()

    def test_shared_policy_per_network(self):
        sim, net = build_network()
        spec = TransportSpec(fidelity=FIDELITY_HYBRID)
        policy = net.shared_fidelity_policy(spec)
        assert net.shared_fidelity_policy(spec) is policy
        assert isinstance(policy, FidelityPolicy)


class TestModels:
    def test_packet_model_builds_connection_end(self):
        from repro.transport import ConnectionEnd, TransportStack

        sim, net = build_network()
        stack = TransportStack(sim, net, "a", "10.0.0.1")
        conn = PacketModel().create_connection(
            stack,
            local="10.0.0.1",
            remote="10.0.0.2",
            config=stack.config,
        )
        assert isinstance(conn, ConnectionEnd)

    def test_fluid_model_names(self):
        sim, net = build_network()
        policy = FidelityPolicy(net, TransportSpec(fidelity=FIDELITY_FLUID))
        model = FluidModel(net, policy)
        assert model.name == FIDELITY_FLUID
        assert PacketModel().name == FIDELITY_PACKET
