"""Congestion-control algorithm unit tests (no network)."""

import pytest

from repro.transport import (
    CC_REGISTRY,
    SCAVENGER_ALGORITHMS,
    CubicCC,
    LedbatCC,
    RenoCC,
    TcpLpCC,
    make_cc,
)

MSS = 1500


class TestReno:
    def test_slow_start_doubles(self):
        cc = RenoCC(MSS, initial_window_segments=2)
        start = cc.cwnd
        cc.on_ack(int(start), rtt_sample=0.01)  # a full window acked
        assert cc.cwnd == pytest.approx(2 * start)

    def test_congestion_avoidance_linear(self):
        cc = RenoCC(MSS)
        cc.ssthresh = cc.cwnd  # leave slow start
        window = cc.cwnd
        cc.on_ack(int(window), rtt_sample=0.01)  # one RTT worth of ACKs
        assert cc.cwnd == pytest.approx(window + MSS, rel=0.01)

    def test_dupack_halves(self):
        cc = RenoCC(MSS, initial_window_segments=20)
        before = cc.cwnd
        cc.on_loss("dupack")
        assert cc.cwnd == pytest.approx(before / 2)
        assert cc.ssthresh == pytest.approx(before / 2)

    def test_timeout_collapses_to_one_mss(self):
        cc = RenoCC(MSS, initial_window_segments=20)
        cc.on_loss("timeout")
        assert cc.cwnd == MSS

    def test_slow_start_capped_at_ssthresh(self):
        cc = RenoCC(MSS, initial_window_segments=2)
        cc.ssthresh = 4 * MSS
        cc.on_ack(100 * MSS, rtt_sample=0.01)
        assert cc.cwnd == 4 * MSS

    def test_floor_at_one_mss(self):
        cc = RenoCC(MSS, initial_window_segments=1)
        for _ in range(5):
            cc.on_loss("dupack")
        assert cc.cwnd >= MSS


class TestCubic:
    def test_growth_toward_wmax_then_beyond(self):
        clock = {"now": 0.0}
        cc = CubicCC(MSS, initial_window_segments=50, clock=lambda: clock["now"])
        cc.ssthresh = cc.cwnd  # exit slow start
        cc.on_loss("dupack")
        after_loss = cc.cwnd
        # ACK clock over several simulated seconds -> grows past w_max.
        for step in range(200):
            clock["now"] = 0.01 * step
            cc.on_ack(MSS, rtt_sample=0.01)
        assert cc.cwnd > after_loss

    def test_timeout_resets(self):
        cc = CubicCC(MSS, initial_window_segments=30)
        cc.on_loss("timeout")
        assert cc.cwnd == MSS

    def test_beta_decrease(self):
        cc = CubicCC(MSS, initial_window_segments=100)
        cc.ssthresh = cc.cwnd
        before = cc.cwnd
        cc.on_loss("dupack")
        assert cc.cwnd == pytest.approx(before * CubicCC.BETA)


class TestLedbat:
    def test_grows_when_delay_at_base(self):
        cc = LedbatCC(MSS, target=0.005)
        before = cc.cwnd
        cc.on_ack(MSS, rtt_sample=0.010)  # establishes the base delay
        cc.on_ack(MSS, rtt_sample=0.010)  # no queueing -> off_target = 1
        assert cc.cwnd > before

    def test_shrinks_when_queueing_exceeds_target(self):
        cc = LedbatCC(MSS, initial_window_segments=20, target=0.005)
        cc.on_ack(MSS, rtt_sample=0.010)  # base = 10 ms
        before = cc.cwnd
        cc.on_ack(MSS, rtt_sample=0.030)  # 20 ms queueing >> 5 ms target
        assert cc.cwnd < before

    def test_tracks_base_delay_minimum(self):
        cc = LedbatCC(MSS)
        cc.on_ack(MSS, rtt_sample=0.020)
        cc.on_ack(MSS, rtt_sample=0.008)
        cc.on_ack(MSS, rtt_sample=0.030)
        assert cc.base_delay == 0.008

    def test_none_rtt_ignored(self):
        cc = LedbatCC(MSS)
        before = cc.cwnd
        cc.on_ack(MSS, rtt_sample=None)
        assert cc.cwnd == before

    def test_loss_halves(self):
        cc = LedbatCC(MSS, initial_window_segments=10)
        before = cc.cwnd
        cc.on_loss("dupack")
        assert cc.cwnd == pytest.approx(before / 2)
        cc.on_loss("timeout")
        assert cc.cwnd == MSS


class TestTcpLp:
    def test_backs_off_on_elevated_rtt(self):
        clock = {"now": 0.0}
        cc = TcpLpCC(MSS, initial_window_segments=20, clock=lambda: clock["now"])
        # Establish a min/max RTT range.
        cc.on_ack(MSS, rtt_sample=0.010)
        for _ in range(20):
            cc.on_ack(MSS, rtt_sample=0.050)  # smoothed rtt rises past trigger
        assert cc.cwnd == MSS

    def test_grows_when_path_idle(self):
        clock = {"now": 0.0}
        cc = TcpLpCC(MSS, initial_window_segments=4, clock=lambda: clock["now"])
        before = cc.cwnd
        for _ in range(10):
            cc.on_ack(MSS, rtt_sample=0.010)  # constant low RTT
        assert cc.cwnd > before

    def test_holdoff_after_inference(self):
        clock = {"now": 0.0}
        cc = TcpLpCC(
            MSS, initial_window_segments=20,
            inference_time=1.0, clock=lambda: clock["now"],
        )
        cc.on_ack(MSS, rtt_sample=0.010)
        for _ in range(20):
            cc.on_ack(MSS, rtt_sample=0.050)
        assert cc.cwnd == MSS
        # During holdoff, even good RTTs don't grow the window.
        clock["now"] = 0.5
        cc.on_ack(MSS, rtt_sample=0.010)
        floor = cc.cwnd
        assert floor == MSS


class TestRegistry:
    def test_all_names_construct(self):
        for name in CC_REGISTRY:
            cc = make_cc(name, MSS, clock=lambda: 0.0)
            assert cc.name == name
            assert cc.cwnd >= MSS

    def test_scavenger_set(self):
        assert SCAVENGER_ALGORITHMS == {"ledbat", "tcplp"}

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_cc("bbr3", MSS)
