"""End-to-end transport tests over a simulated two-host network."""

import pytest

from repro.net import FifoQdisc, Network, Tos
from repro.sim import Simulator
from repro.transport import TransportConfig, TransportStack


def build_net(sim, rate_bps=8_000_000, delay=0.001, qdisc_a=None, config=None):
    """Two hosts, one link; returns (net, stack_a, stack_b)."""
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.connect("a", "b", rate_bps=rate_bps, delay=delay, qdisc_a=qdisc_a)
    config = config or TransportConfig()
    stack_a = TransportStack(sim, net, "a", "10.1.0.1", config=config)
    stack_b = TransportStack(sim, net, "b", "10.1.0.2", config=config)
    net.build_routes()
    return net, stack_a, stack_b


def start_echo_server(sim, stack, port=80):
    """Echo every received message back at the same size."""

    def on_accept(conn):
        def serve():
            while True:
                message, size = yield conn.receive()
                conn.send(("echo", message), size)

        sim.process(serve(), name="echo")

    stack.listen(port, on_accept)


def start_sink_server(sim, stack, received, port=80):
    def on_accept(conn):
        def serve():
            while True:
                message, size = yield conn.receive()
                received.append((sim.now, message, size))

        sim.process(serve(), name="sink")

    stack.listen(port, on_accept)


class TestHandshake:
    def test_established_after_one_rtt(self):
        sim = Simulator()
        _, stack_a, stack_b = build_net(sim, delay=0.005)
        start_echo_server(sim, stack_b)
        conn = stack_a.connect("10.1.0.2", 80)
        sim.run(until=conn.established)
        # SYN + SYN-ACK = one RTT (2 x 5ms) plus tiny serialization.
        assert 0.010 <= sim.now < 0.012

    def test_connect_to_dead_port_fails(self):
        sim = Simulator()
        _, stack_a, _stack_b = build_net(sim)
        conn = stack_a.connect("10.1.0.2", 9999)
        with pytest.raises(ConnectionError):
            sim.run(until=conn.established)

    def test_accept_callback_runs(self):
        sim = Simulator()
        _, stack_a, stack_b = build_net(sim)
        accepted = []
        stack_b.listen(80, accepted.append)
        conn = stack_a.connect("10.1.0.2", 80)
        sim.run(until=conn.established)
        assert len(accepted) == 1
        assert accepted[0].remote == "10.1.0.1"
        assert stack_b.connections_accepted == 1
        assert stack_a.connections_opened == 1

    def test_duplicate_listener_rejected(self):
        sim = Simulator()
        _, _stack_a, stack_b = build_net(sim)
        stack_b.listen(80, lambda conn: None)
        with pytest.raises(ValueError):
            stack_b.listen(80, lambda conn: None)

    def test_server_inherits_cc_and_tos_from_syn(self):
        sim = Simulator()
        _, stack_a, stack_b = build_net(sim)
        accepted = []
        stack_b.listen(80, accepted.append)
        conn = stack_a.connect(
            "10.1.0.2", 80, tos=Tos.SCAVENGER, cc_name="ledbat"
        )
        sim.run(until=conn.established)
        assert accepted[0].cc_name == "ledbat"
        assert accepted[0].tos == Tos.SCAVENGER


class TestMessageDelivery:
    def test_small_message_round_trip(self):
        sim = Simulator()
        _, stack_a, stack_b = build_net(sim)
        start_echo_server(sim, stack_b)
        conn = stack_a.connect("10.1.0.2", 80)
        got = []

        def client(sim):
            yield conn.established
            conn.send("hello", 100)
            message, size = yield conn.receive()
            got.append((message, size, sim.now))

        sim.process(client(sim))
        sim.run()
        assert len(got) == 1
        assert got[0][0] == ("echo", "hello")

    def test_identity_of_message_objects_preserved(self):
        sim = Simulator()
        _, stack_a, stack_b = build_net(sim)
        received = []
        start_sink_server(sim, stack_b, received)
        payload = {"unique": object()}
        conn = stack_a.connect("10.1.0.2", 80)

        def client(sim):
            yield conn.established
            conn.send(payload, 5000)

        sim.process(client(sim))
        sim.run()
        assert received[0][1] is payload

    def test_messages_delivered_in_order(self):
        sim = Simulator()
        _, stack_a, stack_b = build_net(sim)
        received = []
        start_sink_server(sim, stack_b, received)
        conn = stack_a.connect("10.1.0.2", 80)

        def client(sim):
            yield conn.established
            for i in range(20):
                conn.send(i, 3000)

        sim.process(client(sim))
        sim.run()
        assert [message for _, message, _ in received] == list(range(20))

    def test_large_transfer_saturates_link(self):
        sim = Simulator()
        # 8 Mbps = 1 MB/s; 500 KB should take just over 0.5 s.
        _, stack_a, stack_b = build_net(sim, rate_bps=8_000_000, delay=0.001)
        received = []
        start_sink_server(sim, stack_b, received)
        conn = stack_a.connect("10.1.0.2", 80)

        def client(sim):
            yield conn.established
            conn.send("blob", 500_000)

        sim.process(client(sim))
        sim.run()
        assert len(received) == 1
        finish = received[0][0]
        assert 0.5 <= finish <= 0.65  # rate-bound plus handshake/headers

    def test_send_before_established_is_buffered(self):
        sim = Simulator()
        _, stack_a, stack_b = build_net(sim)
        received = []
        start_sink_server(sim, stack_b, received)
        conn = stack_a.connect("10.1.0.2", 80)
        conn.send("early", 1000)  # no yield on established
        sim.run()
        assert [m for _, m, _ in received] == ["early"]

    def test_bidirectional_concurrent_transfer(self):
        sim = Simulator()
        _, stack_a, stack_b = build_net(sim)
        got_at_a, got_at_b = [], []

        def on_accept(conn):
            def serve():
                message, _size = yield conn.receive()
                got_at_b.append(message)
                conn.send("reply-blob", 200_000)

            sim.process(serve())

        stack_b.listen(80, on_accept)
        conn = stack_a.connect("10.1.0.2", 80)

        def client(sim):
            yield conn.established
            conn.send("req-blob", 200_000)
            message, _size = yield conn.receive()
            got_at_a.append(message)

        sim.process(client(sim))
        sim.run()
        assert got_at_b == ["req-blob"]
        assert got_at_a == ["reply-blob"]

    def test_send_on_closed_connection_raises(self):
        sim = Simulator()
        _, stack_a, stack_b = build_net(sim)
        start_echo_server(sim, stack_b)
        conn = stack_a.connect("10.1.0.2", 80)
        sim.run(until=conn.established)
        conn.close()
        with pytest.raises(RuntimeError):
            conn.send("x", 10)

    def test_zero_size_message_rejected(self):
        sim = Simulator()
        _, stack_a, stack_b = build_net(sim)
        start_echo_server(sim, stack_b)
        conn = stack_a.connect("10.1.0.2", 80)
        with pytest.raises(ValueError):
            conn.send("x", 0)


class TestLossRecovery:
    def test_transfer_completes_despite_tail_drops(self):
        sim = Simulator()
        # Tiny egress buffer at the sender: guaranteed drops under slow start.
        _, stack_a, stack_b = build_net(
            sim, rate_bps=8_000_000, qdisc_a=FifoQdisc(limit_bytes=6000)
        )
        received = []
        start_sink_server(sim, stack_b, received)
        conn = stack_a.connect("10.1.0.2", 80)

        def client(sim):
            yield conn.established
            conn.send("blob", 300_000)

        sim.process(client(sim))
        sim.run(until=60.0)
        assert [m for _, m, _ in received] == ["blob"]
        assert conn.retransmits > 0

    def test_fast_retransmit_engages(self):
        sim = Simulator()
        _, stack_a, stack_b = build_net(
            sim, rate_bps=8_000_000, qdisc_a=FifoQdisc(limit_bytes=20_000)
        )
        received = []
        start_sink_server(sim, stack_b, received)
        conn = stack_a.connect("10.1.0.2", 80)

        def client(sim):
            yield conn.established
            conn.send("blob", 400_000)

        sim.process(client(sim))
        sim.run(until=60.0)
        assert received, "transfer did not complete"
        assert conn.retransmits > 0

    def test_rtt_estimate_tracks_path(self):
        sim = Simulator()
        _, stack_a, stack_b = build_net(sim, delay=0.010)
        received = []
        start_sink_server(sim, stack_b, received)
        conn = stack_a.connect("10.1.0.2", 80)

        def client(sim):
            yield conn.established
            conn.send("blob", 50_000)

        sim.process(client(sim))
        sim.run()
        assert conn.srtt is not None
        assert conn.srtt >= 0.020  # at least the two-way propagation delay
        assert conn.srtt < 0.080


class TestFairnessAndScavenging:
    def run_pair(self, cc_a, cc_b, size=400_000, rate=8_000_000):
        """Two flows from one host through the shared bottleneck; returns
        (finish_a, finish_b)."""
        sim = Simulator()
        net = Network(sim)
        net.add_host("src")
        net.add_host("dst")
        net.connect("src", "dst", rate_bps=rate, delay=0.002)
        config = TransportConfig()
        src1 = TransportStack(sim, net, "src", "10.1.0.1", config=config)
        src2 = TransportStack(sim, net, "src", "10.1.0.3", config=config)
        dst = TransportStack(sim, net, "dst", "10.1.0.2", config=config)
        net.build_routes()
        finishes = {}

        def on_accept(conn):
            def serve():
                message, _size = yield conn.receive()
                finishes[message] = sim.now

            sim.process(serve())

        dst.listen(80, on_accept)

        def client(sim, stack, label, cc):
            conn = stack.connect("10.1.0.2", 80, cc_name=cc)
            yield conn.established
            conn.send(label, size)

        sim.process(client(sim, src1, "a", cc_a))
        sim.process(client(sim, src2, "b", cc_b))
        sim.run(until=120.0)
        assert set(finishes) == {"a", "b"}, f"missing flows: {finishes}"
        return finishes["a"], finishes["b"]

    def test_reno_pair_roughly_fair(self):
        finish_a, finish_b = self.run_pair("reno", "reno")
        assert finish_a == pytest.approx(finish_b, rel=0.5)

    def test_ledbat_yields_to_reno(self):
        reno_vs_ledbat, _ = self.run_pair("reno", "ledbat")
        reno_vs_reno, _ = self.run_pair("reno", "reno")
        # Against a scavenger the foreground flow finishes markedly sooner.
        assert reno_vs_ledbat < reno_vs_reno * 0.8

    def test_tcplp_yields_to_reno(self):
        reno_vs_lp, _ = self.run_pair("reno", "tcplp")
        reno_vs_reno, _ = self.run_pair("reno", "reno")
        assert reno_vs_lp < reno_vs_reno * 0.85
