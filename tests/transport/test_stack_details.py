"""Transport stack details: ALPN, flow teardown, multi-stack hosts."""

import pytest

from repro.net import Network
from repro.sim import Simulator
from repro.transport import TransportConfig, TransportStack


def build(sim):
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.connect("a", "b", rate_bps=1e9, delay=0.001)
    config = TransportConfig()
    src = TransportStack(sim, net, "a", "10.1.0.1", config=config)
    dst = TransportStack(sim, net, "b", "10.1.0.2", config=config)
    net.build_routes()
    return net, src, dst


class TestAlpn:
    def test_default_alpn(self):
        sim = Simulator()
        _, src, dst = build(sim)
        accepted = []
        dst.listen(80, accepted.append)
        conn = src.connect("10.1.0.2", 80)
        sim.run(until=conn.established)
        assert conn.alpn == "message"
        assert accepted[0].alpn == "message"

    def test_negotiated_alpn_reaches_server(self):
        sim = Simulator()
        _, src, dst = build(sim)
        accepted = []
        dst.listen(80, accepted.append)
        conn = src.connect("10.1.0.2", 80, alpn="mux")
        sim.run(until=conn.established)
        assert accepted[0].alpn == "mux"


class TestFlowTeardown:
    def test_drop_flow_closes_and_forgets(self):
        sim = Simulator()
        _, src, dst = build(sim)
        dst.listen(80, lambda conn: None)
        conn = src.connect("10.1.0.2", 80)
        sim.run(until=conn.established)
        src.drop_flow(conn.flow_id)
        assert conn.closed
        # Packets for the dropped flow are ignored, not crashed on.
        src.drop_flow(conn.flow_id)  # idempotent

    def test_failed_connect_closes_connection(self):
        sim = Simulator()
        _, src, _dst = build(sim)
        conn = src.connect("10.1.0.2", 4242)  # nobody listening
        with pytest.raises(ConnectionError):
            sim.run(until=conn.established)
        assert conn.closed

    def test_late_packet_for_unknown_flow_is_ignored(self):
        sim = Simulator()
        net, src, dst = build(sim)
        received = []

        def on_accept(conn):
            def serve():
                message, _size = yield conn.receive()
                received.append(message)

            sim.process(serve())

        dst.listen(80, on_accept)
        conn = src.connect("10.1.0.2", 80)
        sim.run(until=conn.established)
        conn.send("hello", 1000)
        sim.run(until=sim.now + 0.0005)  # data in flight
        dst.drop_flow(conn.flow_id)  # server forgets the flow mid-transfer
        sim.run(until=sim.now + 5.0)
        assert received == []  # silently dropped, no crash


class TestMultiStackHost:
    def test_two_addresses_one_host_are_independent(self):
        sim = Simulator()
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        net.connect("a", "b", rate_bps=1e9, delay=0.001)
        config = TransportConfig()
        stack1 = TransportStack(sim, net, "a", "10.1.0.1", config=config)
        stack2 = TransportStack(sim, net, "a", "10.1.0.9", config=config)
        dst = TransportStack(sim, net, "b", "10.1.0.2", config=config)
        net.build_routes()
        seen = []

        def on_accept(conn):
            def serve():
                message, _size = yield conn.receive()
                seen.append((conn.remote, message))

            sim.process(serve())

        dst.listen(80, on_accept)
        for stack, label in ((stack1, "one"), (stack2, "two")):
            conn = stack.connect("10.1.0.2", 80)

            def client(conn=conn, label=label):
                yield conn.established
                conn.send(label, 100)

            sim.process(client())
        sim.run()
        assert sorted(seen) == [("10.1.0.1", "one"), ("10.1.0.9", "two")]
