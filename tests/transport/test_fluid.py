"""Flow-level transport: analytic completion, hybrid downgrade, sharing."""

import pytest

from repro.net import Network
from repro.sim import Simulator
from repro.transport import (
    FluidConnectionEnd,
    TransportConfig,
    TransportSpec,
    TransportStack,
    fluid_transfer_time,
)
from repro.transport.fluid import fluid_transfer_plan

RATE = 1e9
DELAY = 0.001


def build(fidelity="fluid", rate_bps=RATE, delay=DELAY, mss=15_000):
    sim = Simulator()
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.connect("a", "b", rate_bps=rate_bps, delay=delay)
    spec = TransportSpec(fidelity=fidelity, mss=mss, header_bytes=60)
    config = TransportConfig.from_spec(spec)
    src = TransportStack(sim, net, "a", "10.1.0.1", config=config)
    dst = TransportStack(sim, net, "b", "10.1.0.2", config=config)
    net.build_routes()
    return sim, net, src, dst


def serve(sim, dst, received, port=80):
    def on_accept(conn):
        def loop():
            while True:
                message, _size = yield conn.receive()
                received.append((message, sim.now))

        sim.process(loop())

    dst.listen(port, on_accept)


class TestFluidDelivery:
    def test_in_order_delivery_with_tiny_event_count(self):
        sim, net, src, dst = build()
        received = []
        serve(sim, dst, received)
        conn = src.connect("10.1.0.2", 80)

        def client(sim):
            yield conn.established
            for index in range(10):
                conn.send(index, 200_000)

        sim.process(client(sim))
        sim.run(until=10.0)
        assert [m for m, _ in received] == list(range(10))
        assert isinstance(conn, FluidConnectionEnd)
        assert conn.fluid_active
        assert conn.fluid_messages == 10
        assert conn.fluid_bytes == 10 * 200_000
        # Flow-level runs in O(messages) events, not O(segments).
        assert sim.processed_events < 100

    def test_completion_matches_analytic_time(self):
        sim, net, src, dst = build()
        received = []
        serve(sim, dst, received)
        conn = src.connect("10.1.0.2", 80)

        def client(sim):
            yield conn.established
            conn.send("payload", 1_000_000)

        sim.process(client(sim))
        sim.run(until=conn.established)
        start = sim.now
        sim.run(until=10.0)
        forward = net.forwarding_path("10.1.0.1", "10.1.0.2")
        reverse = net.forwarding_path("10.1.0.2", "10.1.0.1")
        expected = fluid_transfer_time(
            1_000_000, forward, reverse, conn.config, conn.cc_name
        )
        assert received[0][1] == pytest.approx(start + expected, rel=1e-9)

    def test_sends_before_establishment_are_buffered(self):
        sim, net, src, dst = build()
        received = []
        serve(sim, dst, received)
        conn = src.connect("10.1.0.2", 80)
        conn.send("early", 1_000)  # handshake not done yet
        sim.run(until=5.0)
        assert [m for m, _ in received] == ["early"]

    def test_close_releases_link_occupancy(self):
        sim, net, src, dst = build()
        received = []
        serve(sim, dst, received)
        conn = src.connect("10.1.0.2", 80)

        def client(sim):
            yield conn.established
            conn.send("doomed", 5_000_000)
            conn.close()

        sim.process(client(sim))
        sim.run(until=10.0)
        assert received == []
        for iface in net.forwarding_path("10.1.0.1", "10.1.0.2"):
            assert iface.fluid_active == 0

    def test_completion_releases_link_occupancy(self):
        sim, net, src, dst = build()
        received = []
        serve(sim, dst, received)
        conn = src.connect("10.1.0.2", 80)

        def client(sim):
            yield conn.established
            conn.send("ok", 500_000)

        sim.process(client(sim))
        sim.run(until=10.0)
        assert len(received) == 1
        for iface in net.forwarding_path("10.1.0.1", "10.1.0.2"):
            assert iface.fluid_active == 0
            assert iface.fluid_bytes_transmitted > 500_000  # payload + headers


class TestHybridDowngrade:
    def test_contended_path_downgrades_sticky(self):
        sim, net, src, dst = build(fidelity="hybrid")
        received = []
        serve(sim, dst, received)
        conn = src.connect("10.1.0.2", 80)

        def client(sim):
            yield conn.established
            conn.send("fluid-one", 50_000)

        sim.process(client(sim))
        sim.run(until=2.0)
        assert conn.fluid_active
        assert conn.fluid_messages == 1
        # Congest the forward path, then send again: the connection must
        # fall back to packet-level — permanently.
        iface = net.forwarding_path("10.1.0.1", "10.1.0.2")[0]
        iface.qdisc._backlog = conn.config.contention_backlog_bytes + 1
        conn.send("packet-one", 50_000)
        iface.qdisc._backlog = 0
        sim.run(until=4.0)
        assert not conn.fluid_active
        assert conn.downgrades == 1
        assert conn.fluid_messages == 1  # second message went packet-level
        assert [m for m, _ in received] == ["fluid-one", "packet-one"]
        # Sticky: an uncontended path does not re-upgrade.
        conn.send("packet-two", 50_000)
        sim.run(until=6.0)
        assert conn.fluid_messages == 1
        assert [m for m, _ in received][-1] == "packet-two"

    def test_fluid_spec_never_downgrades(self):
        sim, net, src, dst = build(fidelity="fluid")
        received = []
        serve(sim, dst, received)
        conn = src.connect("10.1.0.2", 80)

        def client(sim):
            yield conn.established
            conn.send("one", 50_000)

        sim.process(client(sim))
        sim.run(until=2.0)
        iface = net.forwarding_path("10.1.0.1", "10.1.0.2")[0]
        iface.qdisc._backlog = 10**6
        conn.send("two", 50_000)
        iface.qdisc._backlog = 0
        sim.run(until=4.0)
        assert conn.fluid_active
        assert conn.fluid_messages == 2


class TestSharing:
    def test_overlapping_transfers_are_work_conserving(self):
        """Two equal overlapping transfers on one link: the later one
        completes at roughly the time a work-conserving link would take
        to move both (not at 2x its solo time from its own start)."""
        sim, net, src, dst = build()
        received = []
        serve(sim, dst, received)
        size = 2_000_000
        conn_a = src.connect("10.1.0.2", 80)
        conn_b = src.connect("10.1.0.2", 80)

        def client(sim):
            yield conn_a.established
            yield conn_b.established
            conn_a.send("a", size)
            conn_b.send("b", size)

        sim.process(client(sim))
        sim.run(until=conn_a.established)
        sim.run(until=conn_b.established)
        start = sim.now
        sim.run(until=30.0)
        assert len(received) == 2
        forward = net.forwarding_path("10.1.0.1", "10.1.0.2")
        reverse = net.forwarding_path("10.1.0.2", "10.1.0.1")
        config = conn_a.config
        solo = fluid_transfer_time(size, forward, reverse, config)
        last = max(at for _, at in received) - start
        # Work conservation: both transfers take about twice the solo
        # wire time; a pinned-share model would answer ~2x for EACH from
        # its own start even after the other departs.
        assert last == pytest.approx(2 * solo, rel=0.15)
        assert last < 2.5 * solo

    def test_drain_plan_decomposition_consistent(self):
        sim, net, src, dst = build()
        forward = net.forwarding_path("10.1.0.1", "10.1.0.2")
        reverse = net.forwarding_path("10.1.0.2", "10.1.0.1")
        config = TransportConfig.from_spec(
            TransportSpec(mss=15_000, header_bytes=60)
        )
        fixed, drain = fluid_transfer_plan(2_000_000, forward, reverse, config)
        assert drain > 0
        goodput = RATE / 8.0 * (15_000 / (15_000 + 60))
        assert fixed + drain / goodput == pytest.approx(
            fluid_transfer_time(2_000_000, forward, reverse, config), rel=1e-12
        )

    def test_small_transfer_has_no_drain_component(self):
        sim, net, src, dst = build()
        forward = net.forwarding_path("10.1.0.1", "10.1.0.2")
        reverse = net.forwarding_path("10.1.0.2", "10.1.0.1")
        config = TransportConfig.from_spec(
            TransportSpec(mss=15_000, header_bytes=60)
        )
        fixed, drain = fluid_transfer_plan(10_000, forward, reverse, config)
        assert drain == 0.0
        assert fixed > 0.0
