"""Stream multiplexing (SST-style, §3.6): head-of-line-blocking relief."""

import pytest

from repro.net import Network
from repro.sim import Simulator
from repro.transport import MuxConnection, TransportConfig, TransportStack


def build_mux_pair(sim, scheduler="round-robin", rate_bps=8_000_000, chunk=16_000):
    """Client and server MuxConnections over one simulated link."""
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.connect("a", "b", rate_bps=rate_bps, delay=0.001)
    config = TransportConfig(mss=15_000)
    src = TransportStack(sim, net, "a", "10.1.0.1", config=config)
    dst = TransportStack(sim, net, "b", "10.1.0.2", config=config)
    net.build_routes()
    server_mux = {}

    def on_accept(conn):
        server_mux["mux"] = MuxConnection(conn, chunk_bytes=chunk)

    dst.listen(80, on_accept)
    conn = src.connect("10.1.0.2", 80)
    client_mux = MuxConnection(conn, chunk_bytes=chunk, scheduler=scheduler)
    sim.run(until=conn.established)
    return client_mux, server_mux


def collect(sim, mux_holder, count, out):
    def receiver():
        for _ in range(count):
            message, size = yield mux_holder["mux"].receive()
            out.append((sim.now, message, size))

    sim.process(receiver())


class TestBasics:
    def test_single_message_round_trip(self):
        sim = Simulator()
        client, server = build_mux_pair(sim)
        out = []
        collect(sim, server, 1, out)
        client.send("hello", 50_000)
        sim.run()
        assert out[0][1] == "hello"
        assert out[0][2] == 50_000

    def test_many_messages_all_delivered(self):
        sim = Simulator()
        client, server = build_mux_pair(sim)
        out = []
        collect(sim, server, 10, out)
        for i in range(10):
            client.send(i, 5_000 * (i + 1))
        sim.run()
        assert sorted(message for _, message, _ in out) == list(range(10))
        assert client.streams_sent == 10
        assert server["mux"].streams_delivered == 10

    def test_invalid_parameters(self):
        sim = Simulator()
        client, _ = build_mux_pair(sim)
        with pytest.raises(ValueError):
            client.send("x", 0)
        with pytest.raises(ValueError):
            MuxConnection(client.conn, chunk_bytes=0)
        with pytest.raises(ValueError):
            MuxConnection(client.conn, scheduler="shortest-job-first")


class TestHeadOfLineBlocking:
    def run_small_behind_big(self, scheduler):
        """A 2 MB stream starts; 50 ms later a 10 KB stream is queued.
        Returns the completion time of the small stream."""
        sim = Simulator()
        client, server = build_mux_pair(sim, scheduler=scheduler)
        out = []
        collect(sim, server, 2, out)
        start = sim.now
        client.send("big", 2_000_000)

        def late_sender():
            yield sim.timeout(0.05)
            client.send("small", 10_000)

        sim.process(late_sender())
        sim.run()
        completion = {message: t for t, message, _ in out}
        assert set(completion) == {"big", "small"}
        return completion["small"] - start, completion["big"] - start

    def test_fifo_blocks_small_message(self):
        small_fifo, big_fifo = self.run_small_behind_big("fifo")
        # FIFO: the small message waits for the whole 2 MB (~2 s at 1 MB/s).
        assert small_fifo > big_fifo * 0.9

    def test_round_robin_unblocks_small_message(self):
        small_rr, big_rr = self.run_small_behind_big("round-robin")
        small_fifo, _ = self.run_small_behind_big("fifo")
        assert small_rr < small_fifo / 5

    def test_priority_is_fastest_for_small_message(self):
        # Same experiment but the small stream gets priority 0 vs big's 1.
        sim = Simulator()
        client, server = build_mux_pair(sim, scheduler="priority")
        out = []
        collect(sim, server, 2, out)
        client.send("big", 2_000_000, priority=1)

        def late_sender():
            yield sim.timeout(0.05)
            client.send("small", 10_000, priority=0)

        sim.process(late_sender())
        sim.run()
        completion = {message: t for t, message, _ in out}
        # The small stream overtakes everything not yet buffered: it
        # finishes in well under a tenth of the big transfer's time.
        assert completion["small"] < completion["big"] / 10

    def test_priority_fifo_within_class(self):
        sim = Simulator()
        client, server = build_mux_pair(sim, scheduler="priority")
        out = []
        collect(sim, server, 3, out)
        for label in ("first", "second", "third"):
            client.send(label, 200_000, priority=1)
        sim.run()
        order = [message for _, message, _ in out]
        assert order == ["first", "second", "third"]


class TestFairness:
    def test_round_robin_streams_finish_together(self):
        sim = Simulator()
        client, server = build_mux_pair(sim, scheduler="round-robin")
        out = []
        collect(sim, server, 2, out)
        client.send("a", 1_000_000)
        client.send("b", 1_000_000)
        sim.run()
        times = {message: t for t, message, _ in out}
        assert times["a"] == pytest.approx(times["b"], rel=0.25)
