"""The fault-injection engine against a live cluster."""

from helpers import MeshTestbed, echo_handler

from repro.chaos import (
    BlackholeQdisc,
    FaultEvent,
    FaultInjector,
    FaultProfile,
    FaultSpec,
    default_targets,
    timeline_text,
)
from repro.net import LossyQdisc
from repro.sim import RngRegistry


def make_testbed(replicas=2):
    testbed = MeshTestbed()
    testbed.add_service("svc", echo_handler(body_size=10), replicas=replicas)
    testbed.finish("svc")
    return testbed


def make_injector(testbed, seed=42):
    return FaultInjector(testbed.sim, testbed.cluster, RngRegistry(seed))


class TestDefaultTargets:
    def test_gateway_excluded(self):
        testbed = make_testbed()
        targets = default_targets(testbed.cluster)
        for names in targets.values():
            assert not any(n.startswith("istio-ingressgateway") for n in names)
        assert targets["any"] == ["svc-v1-1", "svc-v1-2"]

    def test_redundant_requires_two_endpoints(self):
        testbed = make_testbed(replicas=1)
        targets = default_targets(testbed.cluster)
        assert targets["any"] == ["svc-v1-1"]
        assert targets["redundant"] == []


class TestApplyRevert:
    def test_pod_kill_applies_then_reverts(self):
        testbed = make_testbed()
        injector = make_injector(testbed)
        pod = testbed.cluster.pod("svc-v1-1")
        injector._apply(FaultEvent(0.0, "pod_kill", "svc-v1-1", 1.0, 0.0))
        assert not pod.ready
        assert injector.applied == 1
        testbed.sim.run(until=2.0)
        assert pod.ready
        assert pod.restarts == 1
        assert injector.reverted == 1

    def test_pod_kill_never_takes_last_endpoint(self):
        testbed = make_testbed(replicas=2)
        injector = make_injector(testbed)
        injector._apply(FaultEvent(0.0, "pod_kill", "svc-v1-1", 5.0, 0.0))
        # The sibling is now the last ready endpoint: the kill is vetoed.
        injector._apply(FaultEvent(0.0, "pod_kill", "svc-v1-2", 5.0, 0.0))
        assert injector.applied == 1
        assert injector.skipped == 1
        assert testbed.cluster.pod("svc-v1-2").ready

    def test_sidecar_crash_keeps_endpoint_registered(self):
        testbed = make_testbed()
        injector = make_injector(testbed)
        injector._apply(FaultEvent(0.0, "sidecar_crash", "svc-v1-1", 1.0, 0.0))
        pod = testbed.cluster.pod("svc-v1-1")
        assert isinstance(pod.ingress.qdisc, BlackholeQdisc)
        endpoints = testbed.cluster.services["svc"].endpoints
        assert any(e.pod_name == "svc-v1-1" for e in endpoints)
        testbed.sim.run(until=2.0)
        assert not isinstance(pod.ingress.qdisc, BlackholeQdisc)
        assert pod.restarts == 1

    def test_bandwidth_scales_and_restores_rates(self):
        testbed = make_testbed()
        injector = make_injector(testbed)
        pod = testbed.cluster.pod("svc-v1-1")
        before = (pod.egress.rate_bps, pod.ingress.rate_bps)
        injector._apply(FaultEvent(0.0, "bandwidth", "svc-v1-1", 1.0, 0.25))
        assert pod.egress.rate_bps == before[0] * 0.25
        assert pod.ingress.rate_bps == before[1] * 0.25
        testbed.sim.run(until=2.0)
        assert (pod.egress.rate_bps, pod.ingress.rate_bps) == before

    def test_latency_adds_and_restores_delay(self):
        testbed = make_testbed()
        injector = make_injector(testbed)
        link = testbed.cluster.pod("svc-v1-1").egress.link
        before = link.delay
        injector._apply(FaultEvent(0.0, "latency", "svc-v1-1", 1.0, 0.005))
        assert link.delay == before + 0.005
        testbed.sim.run(until=2.0)
        assert link.delay == before

    def test_loss_wraps_and_unwraps_qdisc(self):
        testbed = make_testbed()
        injector = make_injector(testbed)
        pod = testbed.cluster.pod("svc-v1-1")
        inner = pod.egress.qdisc
        injector._apply(FaultEvent(0.0, "loss", "svc-v1-1", 1.0, 0.1))
        assert isinstance(pod.egress.qdisc, LossyQdisc)
        assert pod.egress.qdisc.child is inner
        testbed.sim.run(until=2.0)
        assert pod.egress.qdisc is inner

    def test_overlapping_slot_is_skipped(self):
        testbed = make_testbed()
        injector = make_injector(testbed)
        injector._apply(FaultEvent(0.0, "latency", "svc-v1-1", 1.0, 0.005))
        injector._apply(FaultEvent(0.0, "latency", "svc-v1-1", 1.0, 0.005))
        assert injector.applied == 1
        assert injector.skipped == 1

    def test_revert_all_then_timer_noop(self):
        testbed = make_testbed()
        injector = make_injector(testbed)
        link = testbed.cluster.pod("svc-v1-1").egress.link
        before = link.delay
        injector._apply(FaultEvent(0.0, "latency", "svc-v1-1", 1.0, 0.005))
        injector.revert_all()
        assert link.delay == before
        assert injector.reverted == 1
        # The originally scheduled revert timer fires and must not
        # double-revert (or crash unpacking missing state).
        testbed.sim.run(until=2.0)
        assert injector.reverted == 1
        assert link.delay == before


class TestChaosPrimitives:
    def test_blackhole_drops_everything(self):
        from repro.net import Packet

        q = BlackholeQdisc()
        assert not q.enqueue(Packet(src="a", dst="b", size=100, seq=0), 0.0)
        assert q.dequeue(0.0) is None
        assert q.next_ready_time(0.0) == float("inf")
        assert len(q) == 0
        assert q.backlog_bytes == 0
        assert q.stats.dropped == 1

    def test_kill_and_crash_are_idempotent(self):
        testbed = make_testbed()
        chaos = make_injector(testbed).chaos
        chaos.kill_pod("svc-v1-1")
        chaos.kill_pod("svc-v1-1")
        chaos.crash_sidecar("svc-v1-1")  # already killed: no-op
        assert chaos.killed_pods == ["svc-v1-1"]
        assert chaos.crashed_sidecars == []
        chaos.restore_pod("svc-v1-1")
        chaos.restore_pod("svc-v1-1")  # second restore: no-op
        assert testbed.cluster.pod("svc-v1-1").restarts == 1

    def test_heal_all_lifts_everything(self):
        testbed = make_testbed()
        chaos = make_injector(testbed).chaos
        pod = testbed.cluster.pod("svc-v1-1")
        chaos.kill_pod("svc-v1-1")
        chaos.crash_sidecar("svc-v1-2")
        chaos.partition(f"pod:{pod.name}", f"node:{pod.node.name}")
        chaos.heal_all()
        assert chaos.killed_pods == []
        assert chaos.crashed_sidecars == []
        assert chaos._partitions == {}
        assert pod.ready


class TestSchedule:
    PROFILE = FaultProfile(
        name="flaky",
        faults=(
            FaultSpec(kind="latency", rate=5.0, duration=0.2, severity=0.001),
            FaultSpec(kind="pod_kill", rate=3.0, duration=0.3, scope="redundant"),
        ),
    )

    def test_schedule_applies_over_run(self):
        testbed = make_testbed()
        injector = make_injector(testbed)
        timeline = injector.schedule(self.PROFILE, horizon=3.0)
        assert timeline
        testbed.sim.run(until=5.0)
        assert injector.applied > 0
        assert injector.applied + injector.skipped == len(timeline)
        assert injector.reverted == injector.applied
        # Everything is back to normal after the last revert.
        assert not injector._active

    def test_same_seed_same_applied_sequence(self):
        lines = []
        for _ in range(2):
            testbed = make_testbed()
            injector = make_injector(testbed, seed=7)
            injector.schedule(self.PROFILE, horizon=3.0)
            testbed.sim.run(until=5.0)
            lines.append(timeline_text(injector.timeline))
        assert lines[0] == lines[1]
