"""Unit tests for the declarative fault-timeline layer."""

import pytest

from repro.chaos import (
    KINDS,
    PROFILE_ORDER,
    FaultProfile,
    FaultSpec,
    build_timeline,
    standard_profiles,
    timeline_text,
)
from repro.sim import RngRegistry

TARGETS = {
    "any": ["frontend-v1-1", "details-v1-1", "reviews-v1-1", "reviews-v2-1"],
    "redundant": ["reviews-v1-1", "reviews-v2-1"],
}

BUSY = FaultProfile(
    name="busy",
    faults=(
        FaultSpec(kind="latency", rate=5.0, duration=0.2, severity=0.001),
        FaultSpec(kind="pod_kill", rate=3.0, duration=0.3, scope="redundant"),
    ),
)


def stream(seed=42):
    return RngRegistry(seed).stream("chaos:timeline")


class TestFaultSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="meteor", rate=1.0)

    def test_unknown_scope(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="pod_kill", rate=1.0, scope="everything")

    def test_rate_duration_start_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="pod_kill", rate=0.0)
        with pytest.raises(ValueError):
            FaultSpec(kind="pod_kill", rate=1.0, duration=0.0)
        with pytest.raises(ValueError):
            FaultSpec(kind="pod_kill", rate=1.0, start=-1.0)

    def test_severity_semantics_per_kind(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="loss", rate=1.0, severity=1.5)
        with pytest.raises(ValueError):
            FaultSpec(kind="bandwidth", rate=1.0, severity=0.0)
        with pytest.raises(ValueError):
            FaultSpec(kind="latency", rate=1.0, severity=-0.1)
        # Valid edges.
        FaultSpec(kind="loss", rate=1.0, severity=1.0)
        FaultSpec(kind="bandwidth", rate=1.0, severity=1.0)


class TestBuildTimeline:
    def test_same_seed_same_timeline(self):
        a = build_timeline(BUSY, TARGETS, 5.0, stream())
        b = build_timeline(BUSY, TARGETS, 5.0, stream())
        assert timeline_text(a) == timeline_text(b)
        assert len(a) > 0

    def test_different_seed_differs(self):
        a = build_timeline(BUSY, TARGETS, 5.0, stream(1))
        b = build_timeline(BUSY, TARGETS, 5.0, stream(2))
        assert timeline_text(a) != timeline_text(b)

    def test_target_order_does_not_matter(self):
        shuffled = {
            scope: list(reversed(names)) for scope, names in TARGETS.items()
        }
        a = build_timeline(BUSY, TARGETS, 5.0, stream())
        b = build_timeline(BUSY, shuffled, 5.0, stream())
        assert timeline_text(a) == timeline_text(b)

    def test_sorted_by_time(self):
        timeline = build_timeline(BUSY, TARGETS, 5.0, stream())
        times = [event.at for event in timeline]
        assert times == sorted(times)

    def test_horizon_and_start_respected(self):
        spec = FaultSpec(kind="latency", rate=10.0, duration=0.1, start=1.0)
        profile = FaultProfile(name="p", faults=(spec,))
        timeline = build_timeline(profile, TARGETS, 3.0, stream())
        assert timeline
        for event in timeline:
            assert 1.0 <= event.at < 3.0

    def test_scope_restricts_targets(self):
        spec = FaultSpec(kind="pod_kill", rate=10.0, scope="redundant")
        profile = FaultProfile(name="p", faults=(spec,))
        timeline = build_timeline(profile, TARGETS, 5.0, stream())
        assert timeline
        assert {event.target for event in timeline} <= set(TARGETS["redundant"])

    def test_plain_list_targets(self):
        timeline = build_timeline(BUSY, ["a", "b"], 5.0, stream())
        assert {event.target for event in timeline} <= {"a", "b"}

    def test_empty_candidates_yield_no_events(self):
        spec = FaultSpec(kind="pod_kill", rate=10.0, scope="redundant")
        profile = FaultProfile(name="p", faults=(spec,))
        timeline = build_timeline(profile, {"any": ["a"]}, 5.0, stream())
        assert timeline == ()

    def test_zero_horizon(self):
        assert build_timeline(BUSY, TARGETS, 0.0, stream()) == ()


class TestStandardProfiles:
    def test_order_covers_profiles(self):
        profiles = standard_profiles()
        assert set(PROFILE_ORDER) == set(profiles)

    def test_baseline_is_empty(self):
        assert standard_profiles()["baseline"].faults == ()

    def test_every_kind_is_known(self):
        for profile in standard_profiles().values():
            for spec in profile.faults:
                assert spec.kind in KINDS

    def test_duration_scale(self):
        full = standard_profiles(duration_scale=1.0)
        half = standard_profiles(duration_scale=0.5)
        for name in full:
            for a, b in zip(full[name].faults, half[name].faults):
                assert b.duration == pytest.approx(a.duration * 0.5)
