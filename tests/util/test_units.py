"""Unit parsing and formatting."""

import pytest

from repro.util import (
    format_bytes,
    format_duration,
    format_rate,
    parse_rate,
    parse_size,
)
from repro.util.units import GB, Gbps, KB, MB, Mbps


class TestParseSize:
    def test_plain_bytes(self):
        assert parse_size("1500B") == 1500

    def test_decimal_units(self):
        assert parse_size("2MB") == 2 * MB
        assert parse_size("3KB") == 3 * KB
        assert parse_size("1GB") == GB

    def test_binary_units(self):
        assert parse_size("1KiB") == 1024
        assert parse_size("2MiB") == 2 * 1024**2

    def test_fractional(self):
        assert parse_size("1.5KB") == 1500

    def test_case_insensitive(self):
        assert parse_size("2mb") == 2 * MB

    def test_numeric_passthrough(self):
        assert parse_size(4096) == 4096
        assert parse_size(1e6) == 1_000_000

    def test_whitespace_tolerated(self):
        assert parse_size(" 10 KB ") == 10 * KB

    def test_invalid(self):
        with pytest.raises(ValueError):
            parse_size("fast")
        with pytest.raises(ValueError):
            parse_size("10XB")


class TestParseRate:
    def test_gbps(self):
        assert parse_rate("1Gbps") == Gbps
        assert parse_rate("15Gbps") == 15 * Gbps

    def test_mbps(self):
        assert parse_rate("100Mbps") == 100 * Mbps

    def test_numeric_passthrough(self):
        assert parse_rate(1e9) == 1e9

    def test_invalid(self):
        with pytest.raises(ValueError):
            parse_rate("1GB")  # size unit, not a rate
        with pytest.raises(ValueError):
            parse_rate("fast")


class TestFormatting:
    def test_format_bytes(self):
        assert format_bytes(1500) == "1.50 KB"
        assert format_bytes(2 * MB) == "2.00 MB"
        assert format_bytes(3 * GB) == "3.00 GB"
        assert format_bytes(12) == "12 B"

    def test_format_rate(self):
        assert format_rate(Gbps) == "1.00 Gbps"
        assert format_rate(1_500_000) == "1.50 Mbps"
        assert format_rate(500) == "500 bps"

    def test_format_duration(self):
        assert format_duration(1.5) == "1.500 s"
        assert format_duration(0.0031) == "3.100 ms"
        assert format_duration(25e-6) == "25.0 µs"
