"""Latency statistics."""

import numpy as np
import pytest

from repro.util import percentile, summarize
from repro.util.stats import LatencySummary


def test_percentile_basic():
    samples = list(range(1, 101))
    assert percentile(samples, 50) == pytest.approx(50.5)
    assert percentile(samples, 99) == pytest.approx(99.01)


def test_percentile_empty():
    with pytest.raises(ValueError):
        percentile([], 50)


def test_percentile_empty_with_default():
    assert percentile([], 50, default=0.0) == 0.0
    assert percentile([], 99, default=-1.0) == -1.0


def test_percentile_default_ignored_when_samples_present():
    assert percentile([1.0, 2.0, 3.0], 50, default=99.0) == pytest.approx(2.0)


def test_summarize_fields():
    samples = [0.010, 0.020, 0.030, 0.040, 0.050]
    summary = summarize(samples)
    assert summary.count == 5
    assert summary.mean == pytest.approx(0.030)
    assert summary.minimum == 0.010
    assert summary.maximum == 0.050
    assert summary.p50 == pytest.approx(0.030)


def test_summarize_percentile_ordering():
    rng = np.random.default_rng(0)
    summary = summarize(rng.lognormal(0, 1, 10_000))
    assert summary.minimum <= summary.p50 <= summary.p90
    assert summary.p90 <= summary.p99 <= summary.p999 <= summary.maximum


def test_summarize_empty():
    # An empty sample set is a well-defined zero summary, not a crash:
    # report code summarizes window-filtered streams that can be empty.
    summary = summarize([])
    assert summary == LatencySummary.empty()
    assert summary.count == 0
    assert summary.mean == 0.0
    assert summary.p99 == 0.0


def test_summary_as_dict_and_str():
    summary = summarize([0.001, 0.002, 0.003])
    d = summary.as_dict()
    assert d["count"] == 3
    assert "p99" in d
    text = str(summary)
    assert "n=3" in text and "ms" in text


def test_summary_is_frozen():
    summary = summarize([1.0])
    with pytest.raises(AttributeError):
        summary.mean = 2.0


def test_single_sample():
    summary = summarize([0.5])
    assert summary.p50 == summary.p99 == summary.maximum == 0.5
    assert isinstance(summary, LatencySummary)
