"""Deprecated-kwarg shims: old call sites keep working, warn once."""

import warnings
from dataclasses import replace

import pytest

from repro.experiments import ScenarioConfig
from repro.experiments.scenario import DEFAULT_MSS, SIM_TRANSPORT_SPEC
from repro.mesh.config import MeshConfig
from repro.transport import TransportSpec
from repro.util import deprecation


@pytest.fixture(autouse=True)
def rearm_shims():
    """Each test observes its shim's first firing."""
    deprecation.reset()
    yield
    deprecation.reset()


class TestWarnOnce:
    def test_second_call_is_silent(self):
        with pytest.warns(DeprecationWarning, match="old"):
            deprecation.warn_once("k", "old thing")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            deprecation.warn_once("k", "old thing")  # must not raise

    def test_reset_rearms_one_key(self):
        with pytest.warns(DeprecationWarning):
            deprecation.warn_once("k", "old thing")
        deprecation.reset("k")
        with pytest.warns(DeprecationWarning):
            deprecation.warn_once("k", "old thing")


class TestMeshConfigMuxShim:
    def test_use_mux_folds_into_transport_spec(self):
        with pytest.warns(DeprecationWarning, match="use_mux"):
            config = MeshConfig(use_mux=True, mux_chunk_bytes=8_000)
        assert config.transport_spec().mux is True
        assert config.transport_spec().mux_chunk_bytes == 8_000
        # Folded: the legacy fields are cleared.
        assert config.use_mux is None
        assert config.mux_chunk_bytes is None

    def test_fold_preserves_existing_transport_spec(self):
        with pytest.warns(DeprecationWarning):
            config = MeshConfig(
                transport=TransportSpec(mss=9000), use_mux=True
            )
        assert config.transport_spec().mss == 9000
        assert config.transport_spec().mux is True

    def test_replace_roundtrip_does_not_rewarn(self):
        with pytest.warns(DeprecationWarning):
            config = MeshConfig(use_mux=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            clone = replace(config, default_timeout=0.5)
        assert clone.transport_spec().mux is True

    def test_new_style_config_never_warns(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            config = MeshConfig(transport=TransportSpec(mux=True))
        assert config.transport_spec().mux is True


class TestMeshConfigProxyCostShim:
    def test_proxy_delay_folds_into_cost_model(self):
        with pytest.warns(DeprecationWarning, match="proxy_delay"):
            config = MeshConfig(
                proxy_delay_median=0.0005,
                proxy_delay_p99=0.0015,
                connect_extra_delay=0.0001,
            )
        model = config.proxy_cost_model()
        assert model.traversal_median == 0.0005
        assert model.traversal_p99 == 0.0015
        assert model.connect_extra == 0.0001
        # Folded: the legacy fields are cleared.
        assert config.proxy_delay_median is None
        assert config.proxy_delay_p99 is None
        assert config.connect_extra_delay is None

    def test_fold_preserves_existing_cost_model_fields(self):
        from repro.dataplane import ProxyCostModel

        with pytest.warns(DeprecationWarning):
            config = MeshConfig(
                proxy_cost=ProxyCostModel(filter_per_request=1e-5),
                proxy_delay_median=0.0005,
                proxy_delay_p99=0.0015,
            )
        model = config.proxy_cost_model()
        assert model.traversal_median == 0.0005
        assert model.filter_per_request == 1e-5

    def test_replace_roundtrip_does_not_rewarn(self):
        with pytest.warns(DeprecationWarning):
            config = MeshConfig(proxy_delay_median=0.0006, proxy_delay_p99=0.002)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            clone = replace(config, default_timeout=0.5)
        assert clone.proxy_cost_model().traversal_median == 0.0006

    def test_new_style_config_never_warns(self):
        from repro.dataplane import ProxyCostModel

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            config = MeshConfig(proxy_cost=ProxyCostModel(traversal_median=0.0002))
        assert config.proxy_cost_model().traversal_median == 0.0002


class TestScenarioConfigMssShim:
    def test_mss_folds_into_transport_spec(self):
        with pytest.warns(DeprecationWarning, match="mss"):
            config = ScenarioConfig(mss=9_000)
        assert config.effective_transport().mss == 9_000
        assert config.mss is None

    def test_fold_keeps_sim_scale_defaults(self):
        with pytest.warns(DeprecationWarning):
            config = ScenarioConfig(mss=9_000)
        spec = config.effective_transport()
        assert spec.header_bytes == SIM_TRANSPORT_SPEC.header_bytes

    def test_default_config_uses_sim_scale_spec(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            config = ScenarioConfig()
        assert config.effective_transport() is SIM_TRANSPORT_SPEC
        assert config.effective_transport().mss == DEFAULT_MSS

    def test_explicit_transport_wins(self):
        spec = TransportSpec(fidelity="hybrid", mss=1460)
        config = ScenarioConfig(transport=spec)
        assert config.effective_transport() is spec
