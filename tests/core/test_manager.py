"""The prioritization manager: apply/remove lifecycles."""

import pytest

from helpers import MeshTestbed, echo_handler

from repro.core import (
    CrossLayerPolicy,
    PinningSpec,
    PrioritizationManager,
    PriorityPolicyHooks,
)
from repro.net import FifoQdisc, WeightedPrioQdisc


def make_testbed_with_reviews():
    testbed = MeshTestbed()
    testbed.add_service("reviews", echo_handler(), version="v1")
    testbed.add_service("reviews", echo_handler(), version="v2")
    testbed.add_service("frontend", echo_handler())
    return testbed


def make_manager(testbed, policy):
    return PrioritizationManager(
        sim=testbed.sim,
        cluster=testbed.cluster,
        mesh=testbed.mesh,
        policy=policy,
    )


class TestApply:
    def test_full_apply_installs_everything(self):
        testbed = make_testbed_with_reviews()
        manager = make_manager(testbed, CrossLayerPolicy.paper_prototype())
        manager.apply(pinning=[PinningSpec(service="reviews")])
        summary = manager.summary()
        assert summary["applied"]
        assert summary["pinned_services"] == ["reviews"]
        assert summary["tc_interfaces"] == 3  # every pod egress programmed
        # The high-priority pod's address is the TC classification target.
        v1_pod = testbed.cluster.pods_of("reviews-v1")[0]
        assert summary["high_priority_ips"] == [v1_pod.ip]
        # Hooks installed mesh-wide.
        for sidecar in testbed.mesh.sidecars:
            assert isinstance(sidecar.policy, PriorityPolicyHooks)

    def test_tc_only_apply(self):
        testbed = make_testbed_with_reviews()
        policy = CrossLayerPolicy(
            replica_pinning=False, tc_prio=True, tc_classify_on="tos",
            packet_tagging=True,
        )
        manager = make_manager(testbed, policy)
        manager.apply()
        assert manager.summary()["tc_interfaces"] == 3
        assert manager.summary()["pinned_services"] == []

    def test_double_apply_rejected(self):
        testbed = make_testbed_with_reviews()
        manager = make_manager(testbed, CrossLayerPolicy.paper_prototype())
        manager.apply(pinning=[PinningSpec(service="reviews")])
        with pytest.raises(RuntimeError):
            manager.apply()

    def test_sdn_te_requires_controller(self):
        testbed = make_testbed_with_reviews()
        policy = CrossLayerPolicy(sdn_te=True)
        manager = make_manager(testbed, policy)
        with pytest.raises(ValueError):
            manager.apply()

    def test_inbound_queueing_enables_sidecar_queues(self):
        testbed = make_testbed_with_reviews()
        policy = CrossLayerPolicy(
            replica_pinning=False, tc_prio=False, inbound_queueing=True
        )
        manager = make_manager(testbed, policy)
        manager.apply()
        for sidecar in testbed.mesh.sidecars:
            assert sidecar._inbound_queue is not None


class TestRemove:
    def test_remove_restores_baseline(self):
        testbed = make_testbed_with_reviews()
        manager = make_manager(testbed, CrossLayerPolicy.paper_prototype())
        manager.apply(pinning=[PinningSpec(service="reviews")])
        pod = testbed.cluster.pods_of("reviews-v1")[0]
        assert isinstance(pod.egress.qdisc, WeightedPrioQdisc)
        manager.remove()
        assert isinstance(pod.egress.qdisc, FifoQdisc)
        assert not manager.applied
        sidecar = testbed.mesh.sidecars[0]
        assert sidecar.routes.rules_for("reviews") == []
        assert not isinstance(sidecar.policy, PriorityPolicyHooks)

    def test_remove_before_apply_is_noop(self):
        testbed = make_testbed_with_reviews()
        manager = make_manager(testbed, CrossLayerPolicy.paper_prototype())
        manager.remove()  # no error

    def test_reapply_after_remove(self):
        testbed = make_testbed_with_reviews()
        manager = make_manager(testbed, CrossLayerPolicy.paper_prototype())
        manager.apply(pinning=[PinningSpec(service="reviews")])
        manager.remove()
        manager.apply(pinning=[PinningSpec(service="reviews")])
        assert manager.applied


class TestPinningSpec:
    def test_label_accessors(self):
        spec = PinningSpec(service="reviews")
        assert spec.high_labels == {"version": "v1"}
        assert spec.low_labels == {"version": "v2"}

    def test_custom_subsets(self):
        spec = PinningSpec(
            service="svc",
            high_subset=(("tier", "gold"),),
            low_subset=(("tier", "bulk"),),
        )
        assert spec.high_labels == {"tier": "gold"}
        assert spec.low_labels == {"tier": "bulk"}
