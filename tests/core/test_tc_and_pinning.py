"""TC rule installation and replica-pinning route rules."""

import pytest

from helpers import MeshTestbed, echo_handler

from repro.core import (
    CrossLayerPolicy,
    TcRuleInstaller,
    install_replica_pinning,
    pinning_rules,
    remove_replica_pinning,
)
from repro.http import HttpRequest
from repro.net import Packet, Tos, WeightedPrioQdisc


class TestTcRuleInstaller:
    def test_install_swaps_qdisc_on_pod_egress(self):
        testbed = MeshTestbed()
        testbed.add_service("a", echo_handler())
        pod = testbed.cluster.pods_of("a-v1")[0]
        installer = TcRuleInstaller(high_share=0.95)
        rule = installer.install_on_pod(pod)
        assert isinstance(pod.egress.qdisc, WeightedPrioQdisc)
        assert rule.interface_name == pod.egress.name
        assert rule.high_share == 0.95

    def test_install_everywhere_covers_all_pods(self):
        testbed = MeshTestbed()
        testbed.add_service("a", echo_handler(), replicas=2)
        testbed.add_service("b", echo_handler())
        installer = TcRuleInstaller()
        rules = installer.install_everywhere(testbed.cluster)
        assert len(rules) == 3

    def test_dst_ip_classification(self):
        installer = TcRuleInstaller(classify_on="dst-ip")
        installer.high_priority_ips.add("10.1.0.5")
        classifier = installer._classifier()
        high = Packet(src="x", dst="10.1.0.5", size=100)
        low = Packet(src="x", dst="10.1.0.6", size=100)
        assert classifier(high) == 0
        assert classifier(low) == 1

    def test_tos_classification(self):
        installer = TcRuleInstaller(classify_on="tos")
        classifier = installer._classifier()
        assert classifier(Packet(src="x", dst="y", size=1, tos=Tos.HIGH)) == 0
        assert classifier(Packet(src="x", dst="y", size=1, tos=Tos.SCAVENGER)) == 1

    def test_invalid_classify_on(self):
        with pytest.raises(ValueError):
            TcRuleInstaller(classify_on="port")

    def test_band_byte_counters(self):
        testbed = MeshTestbed()
        testbed.add_service("a", echo_handler())
        pod = testbed.cluster.pods_of("a-v1")[0]
        installer = TcRuleInstaller(classify_on="tos")
        installer.install_on_pod(pod)
        assert installer.high_band_bytes() == 0
        assert installer.low_band_bytes() == 0


class TestReplicaPinning:
    def test_rules_structure(self):
        rules = pinning_rules({"version": "v1"}, {"version": "v2"})
        assert len(rules) == 3  # high, low, catch-all
        assert rules[2].matches == ()

    def test_install_and_remove(self):
        testbed = MeshTestbed()
        testbed.add_service("reviews", echo_handler(), version="v1")
        testbed.add_service("reviews", echo_handler(), version="v2")
        install_replica_pinning(testbed.mesh, "reviews")
        sidecar = testbed.mesh.sidecars[0]
        assert len(sidecar.routes.rules_for("reviews")) == 3
        remove_replica_pinning(testbed.mesh, "reviews")
        assert sidecar.routes.rules_for("reviews") == []

    def test_pinned_resolution(self):
        testbed = MeshTestbed()
        testbed.add_service("reviews", echo_handler(), version="v1")
        testbed.add_service("reviews", echo_handler(), version="v2")
        install_replica_pinning(testbed.mesh, "reviews")
        sidecar = testbed.mesh.sidecars[0]
        high = HttpRequest(service="reviews")
        high.headers["x-priority"] = "high"
        assert sidecar.routes.resolve(high).subset_labels == {"version": "v1"}
        low = HttpRequest(service="reviews")
        low.headers["x-priority"] = "low"
        assert sidecar.routes.resolve(low).subset_labels == {"version": "v2"}
        assert sidecar.routes.resolve(
            HttpRequest(service="reviews")
        ).subset_labels == {}


class TestCrossLayerPolicy:
    def test_disabled_has_nothing_enabled(self):
        assert not CrossLayerPolicy.disabled().any_enabled

    def test_paper_prototype_shape(self):
        policy = CrossLayerPolicy.paper_prototype()
        assert policy.replica_pinning and policy.tc_prio
        assert not policy.scavenger_transport and not policy.sdn_te
        assert policy.high_share == 0.95
        assert policy.tc_classify_on == "dst-ip"

    def test_invalid_share(self):
        with pytest.raises(ValueError):
            CrossLayerPolicy(high_share=0.2)

    def test_invalid_classify_on(self):
        with pytest.raises(ValueError):
            CrossLayerPolicy(tc_classify_on="flow-label")
