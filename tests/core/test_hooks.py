"""PriorityPolicyHooks: provenance -> transport/queueing decisions."""

from repro.core import CrossLayerPolicy, Priority, PriorityPolicyHooks, set_priority
from repro.http import HttpRequest
from repro.net import Tos


def request_with(priority=None):
    request = HttpRequest(service="svc")
    if priority is not None:
        set_priority(request, priority)
    return request


class TestTransportParams:
    def test_tagging_maps_priority_to_tos(self):
        hooks = PriorityPolicyHooks(CrossLayerPolicy(packet_tagging=True))
        assert hooks.transport_params(request_with(Priority.HIGH)).tos == Tos.HIGH
        assert (
            hooks.transport_params(request_with(Priority.LOW)).tos == Tos.SCAVENGER
        )

    def test_no_tagging_keeps_normal_tos(self):
        hooks = PriorityPolicyHooks(CrossLayerPolicy(packet_tagging=False))
        assert hooks.transport_params(request_with(Priority.HIGH)).tos == Tos.NORMAL
        assert hooks.transport_params(request_with(Priority.LOW)).tos == Tos.NORMAL

    def test_unclassified_is_neutral(self):
        hooks = PriorityPolicyHooks(CrossLayerPolicy(packet_tagging=True))
        params = hooks.transport_params(request_with())
        assert params.tos == Tos.NORMAL
        assert params.cc_name == "reno"

    def test_scavenger_transport_for_low_only(self):
        policy = CrossLayerPolicy(scavenger_transport=True, scavenger_cc="ledbat")
        hooks = PriorityPolicyHooks(policy)
        assert hooks.transport_params(request_with(Priority.LOW)).cc_name == "ledbat"
        assert hooks.transport_params(request_with(Priority.HIGH)).cc_name == "reno"

    def test_tcplp_selectable(self):
        policy = CrossLayerPolicy(scavenger_transport=True, scavenger_cc="tcplp")
        hooks = PriorityPolicyHooks(policy)
        assert hooks.transport_params(request_with(Priority.LOW)).cc_name == "tcplp"


class TestQueuePriority:
    def test_ordering(self):
        hooks = PriorityPolicyHooks(CrossLayerPolicy())
        high = hooks.request_priority(request_with(Priority.HIGH))
        none = hooks.request_priority(request_with())
        low = hooks.request_priority(request_with(Priority.LOW))
        assert high < none < low


class TestIngressClassification:
    def test_counts_maintained(self):
        hooks = PriorityPolicyHooks(CrossLayerPolicy())
        batch = HttpRequest(service="svc")
        batch.headers["x-workload"] = "batch"
        hooks.classify_ingress(batch)
        hooks.classify_ingress(HttpRequest(service="svc"))
        assert hooks.classified[Priority.LOW] == 1
        assert hooks.classified[Priority.HIGH] == 1

    def test_observe_response_feeds_inference(self):
        from repro.core import InferringClassifier
        from repro.http import HttpResponse

        classifier = InferringClassifier()
        hooks = PriorityPolicyHooks(CrossLayerPolicy(), classifier)
        request = HttpRequest(service="svc", path="/big")
        hooks.observe_response(request, HttpResponse(body_size=1_000_000))
        assert classifier.learned_sizes["/big"] == 1_000_000
