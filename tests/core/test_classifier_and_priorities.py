"""Priority classes, ingress classifiers, inference."""

import pytest

from repro.core import (
    InferringClassifier,
    Priority,
    RuleClassifier,
    get_priority,
    set_priority,
)
from repro.http import HttpRequest, PRIORITY
from repro.net import Tos


class TestPriorities:
    def test_header_round_trip(self):
        request = HttpRequest(service="svc")
        assert get_priority(request) is None
        set_priority(request, Priority.LOW)
        assert request.headers[PRIORITY] == "low"
        assert get_priority(request) is Priority.LOW

    def test_garbage_header_is_none(self):
        request = HttpRequest(service="svc")
        request.headers[PRIORITY] = "urgent-ish"
        assert get_priority(request) is None

    def test_tos_mapping(self):
        assert Priority.HIGH.tos == Tos.HIGH
        assert Priority.LOW.tos == Tos.SCAVENGER


class TestRuleClassifier:
    def test_workload_header_rule(self):
        classifier = RuleClassifier()
        batch = HttpRequest(service="svc")
        batch.headers["x-workload"] = "batch"
        assert classifier.apply(batch) is Priority.LOW
        assert batch.headers[PRIORITY] == "low"
        interactive = HttpRequest(service="svc")
        interactive.headers["x-workload"] = "interactive"
        assert classifier.apply(interactive) is Priority.HIGH

    def test_path_prefix_rules_beat_header(self):
        classifier = RuleClassifier(low_paths=("/export",), high_paths=("/checkout",))
        request = HttpRequest(service="svc", path="/export/all")
        assert classifier.apply(request) is Priority.LOW
        checkout = HttpRequest(service="svc", path="/checkout")
        checkout.headers["x-workload"] = "batch"
        assert classifier.apply(checkout) is Priority.HIGH

    def test_explicit_app_signal_wins(self):
        """§3.3: apps can signal preferences directly; the classifier
        must not override an explicit priority."""
        classifier = RuleClassifier()
        request = HttpRequest(service="svc")
        request.headers["x-workload"] = "batch"
        set_priority(request, Priority.HIGH)
        assert classifier.apply(request) is Priority.HIGH

    def test_default(self):
        assert RuleClassifier().apply(HttpRequest(service="svc")) is Priority.HIGH
        low_default = RuleClassifier(default=Priority.LOW)
        assert low_default.apply(HttpRequest(service="svc")) is Priority.LOW


class TestInferringClassifier:
    def test_unseen_paths_default_high(self):
        classifier = InferringClassifier()
        assert classifier.apply(HttpRequest(service="s", path="/new")) is Priority.HIGH

    def test_learns_bulk_paths(self):
        classifier = InferringClassifier(size_ratio_threshold=10.0)
        for _ in range(5):
            classifier.observe("/browse", 10_000)
            classifier.observe("/analytics", 2_000_000)
        browse = HttpRequest(service="s", path="/browse")
        analytics = HttpRequest(service="s", path="/analytics")
        assert classifier.apply(browse) is Priority.HIGH
        assert classifier.apply(analytics) is Priority.LOW

    def test_below_threshold_stays_high(self):
        classifier = InferringClassifier(size_ratio_threshold=10.0)
        classifier.observe("/a", 1_000)
        classifier.observe("/b", 5_000)  # only 5x bigger
        assert classifier.apply(HttpRequest(service="s", path="/b")) is Priority.HIGH

    def test_ewma_adapts(self):
        classifier = InferringClassifier(alpha=0.5)
        classifier.observe("/p", 100.0)
        classifier.observe("/p", 200.0)
        assert classifier.learned_sizes["/p"] == pytest.approx(150.0)

    def test_single_path_never_low(self):
        # With only one path observed, it IS the smallest -> ratio 1.
        classifier = InferringClassifier()
        classifier.observe("/only", 5_000_000)
        assert classifier.apply(HttpRequest(service="s", path="/only")) is Priority.HIGH
