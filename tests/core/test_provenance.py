"""Provenance auditing over traces."""

from repro.core import audit_provenance, services_touched_by_priority
from repro.mesh import Tracer


def add_span(tracer, trace_id, service, parent=None, priority=None):
    span = tracer.start_span(
        trace_id, service, "op", now=0.0, parent_span_id=parent, priority=priority
    )
    span.finish(1.0)
    tracer.record(span)
    return span


def test_consistent_trace_passes():
    tracer = Tracer()
    root = add_span(tracer, "t1", "gw", priority="high")
    add_span(tracer, "t1", "frontend", parent=root.span_id, priority="high")
    report = audit_provenance(tracer)
    assert report.consistent
    assert report.traces_consistent == 1
    assert report.priority_counts == {"high": 1}


def test_dropped_priority_is_a_violation():
    tracer = Tracer()
    root = add_span(tracer, "t1", "gw", priority="high")
    add_span(tracer, "t1", "frontend", parent=root.span_id, priority=None)
    report = audit_provenance(tracer)
    assert not report.consistent
    assert len(report.violations) == 1
    trace_id, priority, bad = report.violations[0]
    assert trace_id == "t1" and priority == "high" and len(bad) == 1


def test_flipped_priority_is_a_violation():
    tracer = Tracer()
    root = add_span(tracer, "t1", "gw", priority="low")
    add_span(tracer, "t1", "frontend", parent=root.span_id, priority="high")
    assert not audit_provenance(tracer).consistent


def test_unclassified_traces_counted_separately():
    tracer = Tracer()
    add_span(tracer, "t1", "gw")  # no priority at the root
    report = audit_provenance(tracer)
    assert report.traces_unclassified == 1
    assert report.consistent  # unclassified is not a violation


def test_services_touched_by_priority():
    tracer = Tracer()
    root = add_span(tracer, "t1", "gw", priority="low")
    add_span(tracer, "t1", "db", parent=root.span_id, priority="low")
    add_span(tracer, "t2", "gw", priority="high")
    assert services_touched_by_priority(tracer, "low") == {"gw", "db"}
    assert services_touched_by_priority(tracer, "high") == {"gw"}
    assert services_touched_by_priority(tracer, "mid") == set()
