"""The three data planes over the real simulated mesh: factory wiring,
ambient node-scoped sharing, local-hop shortcut, no-mesh baseline."""

import pytest

from helpers import MeshTestbed, echo_handler

from repro.cluster import PodSpec
from repro.dataplane import (
    AmbientDataPlane,
    NoMeshDataPlane,
    SidecarDataPlane,
    make_data_plane,
)
from repro.http import HttpRequest
from repro.mesh import MeshConfig, MtlsContext
from repro.sim import RngRegistry, Simulator


def submit(testbed, gateway):
    event = gateway.submit(HttpRequest(service=""))
    return testbed.sim.run(until=event)


def ambient_testbed(**mesh_kwargs):
    config = MeshConfig(data_plane="ambient", **mesh_kwargs)
    return MeshTestbed(mesh_config=config)


class TestFactory:
    def test_default_is_sidecar(self):
        plane = make_data_plane(MeshConfig())
        assert isinstance(plane, SidecarDataPlane)

    def test_none_plane(self):
        plane = make_data_plane(MeshConfig(data_plane="none"))
        assert isinstance(plane, NoMeshDataPlane)

    def test_ambient_needs_sim_and_rng(self):
        config = MeshConfig(data_plane="ambient")
        with pytest.raises(ValueError, match="ambient"):
            make_data_plane(config)
        plane = make_data_plane(
            config, sim=Simulator(), rng_registry=RngRegistry(0)
        )
        assert isinstance(plane, AmbientDataPlane)

    def test_unknown_plane_rejected_at_config(self):
        with pytest.raises(ValueError, match="data_plane"):
            MeshConfig(data_plane="ztunnel")

    def test_mesh_shares_one_plane_with_every_sidecar(self):
        testbed = MeshTestbed()
        testbed.add_service("echo", echo_handler(), replicas=2)
        testbed.finish("echo")
        plane = testbed.mesh.dataplane
        assert all(
            sidecar._dataplane is plane for sidecar in testbed.mesh.sidecars
        )


class TestAmbient:
    def test_one_shared_proxy_per_node(self):
        testbed = ambient_testbed()
        testbed.add_service("echo", echo_handler(), replicas=3)
        gateway = testbed.finish("echo")
        plane = testbed.mesh.dataplane
        # Four pods (3 echo + gateway) on one node: exactly one proxy,
        # placed on the node itself.
        assert len(plane.node_proxies) == 1
        node = testbed.cluster.nodes[0]
        assert node.proxy is plane.node_proxies[0]
        response = submit(testbed, gateway)
        assert response.status == 200
        assert node.proxy.traversals > 0

    def test_node_local_hop_skips_the_network(self):
        testbed = ambient_testbed()
        testbed.add_service("echo", echo_handler())
        gateway = testbed.finish("echo")
        response = submit(testbed, gateway)
        assert response.status == 200
        # Co-located caller and callee: delivered in-process, so the
        # gateway sidecar never opened a connection.
        assert gateway.sidecar.pool_connections_created == 0

    def test_local_hop_charges_two_traversals(self):
        testbed = ambient_testbed()
        testbed.add_service("echo", echo_handler())
        gateway = testbed.finish("echo")
        submit(testbed, gateway)
        node = testbed.cluster.nodes[0]
        # One request/response over one node-local hop: egress-req +
        # ingress-resp only (the sidecar plane would charge four).
        assert node.proxy.traversals == 2

    def test_remote_hop_uses_both_node_proxies_and_the_wire(self):
        testbed = ambient_testbed()
        testbed.cluster.add_node("node-1")
        testbed.cluster.create_deployment(
            "echo-v1",
            replicas=1,
            spec=PodSpec(labels={"app": "echo"}, node_hint="node-1"),
        )
        testbed.cluster.create_service("echo", selector={"app": "echo"})
        from repro.apps import Microservice

        for pod in testbed.cluster.pods_of("echo-v1"):
            sidecar = testbed.mesh.inject_pod(pod, service_name="echo")
            micro = Microservice(testbed.sim, pod, sidecar, pod.name)
            micro.default_route(echo_handler())
        gateway = testbed.finish("echo")
        response = submit(testbed, gateway)
        assert response.status == 200
        # Crossed nodes: a real connection, and both node proxies paid.
        assert gateway.sidecar.pool_connections_created > 0
        plane = testbed.mesh.dataplane
        assert len(plane.node_proxies) == 2
        assert all(proxy.traversals == 2 for proxy in plane.node_proxies)

    def test_dead_pod_never_delivered_in_process(self):
        """A killed/draining pod must fail the way the wire would (a
        connect failure on the network path), not be reached through
        the in-process shortcut."""
        testbed = ambient_testbed()
        testbed.add_service("echo", echo_handler())
        testbed.finish("echo")
        plane = testbed.mesh.dataplane
        caller = testbed.mesh.sidecar_of("istio-ingressgateway-1")
        endpoint = testbed.cluster.services["echo"].endpoints[0]
        target = plane.local_sidecar(caller, endpoint)
        assert target is not None
        target.pod.ready = False
        assert plane.local_sidecar(caller, endpoint) is None

    def test_concurrency_one_makes_pods_queue_on_the_shared_proxy(self):
        testbed = ambient_testbed(node_proxy_concurrency=1)
        testbed.add_service("echo", echo_handler(), replicas=4)
        gateway = testbed.finish("echo")
        events = [
            gateway.submit(HttpRequest(service="")) for _ in range(20)
        ]
        for event in events:
            testbed.sim.run(until=event)
        node = testbed.cluster.nodes[0]
        # Node-scoped contention: concurrent traversals from different
        # pods serialized on the single shared worker slot.
        assert node.proxy.wait_seconds > 0.0

    def test_ample_concurrency_never_queues(self):
        testbed = ambient_testbed(node_proxy_concurrency=64)
        testbed.add_service("echo", echo_handler(), replicas=4)
        gateway = testbed.finish("echo")
        events = [
            gateway.submit(HttpRequest(service="")) for _ in range(20)
        ]
        for event in events:
            testbed.sim.run(until=event)
        assert testbed.cluster.nodes[0].proxy.wait_seconds == 0.0


class TestNoMesh:
    def test_round_trip_and_no_wire_overhead_even_with_mtls(self):
        config = MeshConfig(data_plane="none", mtls=MtlsContext(enabled=True))
        testbed = MeshTestbed(mesh_config=config)
        testbed.add_service("echo", echo_handler(), replicas=1)
        gateway = testbed.finish("echo")
        response = submit(testbed, gateway)
        assert response.status == 200
        assert isinstance(testbed.mesh.dataplane, NoMeshDataPlane)
        # Nothing interposes: no per-message record overhead.
        assert all(
            sidecar._msg_overhead == 0 for sidecar in testbed.mesh.sidecars
        )

    def test_faster_than_sidecar(self):
        assert _first_request_latency(
            MeshConfig(data_plane="none")
        ) < _first_request_latency(MeshConfig())


def _first_request_latency(config):
    testbed = MeshTestbed(mesh_config=config)
    testbed.add_service("echo", echo_handler())
    gateway = testbed.finish("echo")
    start = testbed.sim.now
    submit(testbed, gateway)
    return testbed.sim.now - start


class TestConnectionCosts:
    def test_connect_extra_charged_on_fresh_connections(self):
        from repro.dataplane import ProxyCostModel

        slow = MeshConfig(proxy_cost=ProxyCostModel(connect_extra=0.005))
        delta = _first_request_latency(slow) - _first_request_latency(
            MeshConfig()
        )
        # One fresh connection on the single hop: exactly one extra.
        assert delta == pytest.approx(0.005, rel=1e-9)

    def test_mtls_handshake_charged_on_fresh_connections(self):
        secure = MeshConfig(mtls=MtlsContext(enabled=True))
        assert _first_request_latency(secure) > _first_request_latency(
            MeshConfig()
        )
