"""ProxyCostModel: validation, determinism, byte-identity with the
legacy single-lognormal proxy delay."""

import pytest

from repro.dataplane import (
    COMPONENT_CRYPTO,
    COMPONENT_FILTERS,
    COMPONENT_INTERCEPT,
    COMPONENT_PARSE,
    ProxyCostModel,
)
from repro.sim.rng import (
    Distributions,
    RngRegistry,
    lognormal_params_from_quantiles,
)


def _dist(seed=7, stream="proxy"):
    return Distributions(RngRegistry(seed).stream(stream))


class TestValidation:
    def test_median_must_be_positive(self):
        with pytest.raises(ValueError):
            ProxyCostModel(traversal_median=0.0)

    def test_p99_must_exceed_median(self):
        with pytest.raises(ValueError):
            ProxyCostModel(traversal_median=0.002, traversal_p99=0.001)

    def test_shares_must_sum_to_one(self):
        with pytest.raises(ValueError):
            ProxyCostModel(
                intercept_share=0.5, parse_share=0.5, filter_share=0.5
            )

    def test_shares_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            ProxyCostModel(
                intercept_share=-0.1, parse_share=0.8, filter_share=0.3
            )

    def test_extras_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            ProxyCostModel(parse_per_byte=-1e-9)
        with pytest.raises(ValueError):
            ProxyCostModel(connect_extra=-1.0)

    def test_custom_shares_accepted(self):
        model = ProxyCostModel(
            intercept_share=0.2, parse_share=0.5, filter_share=0.3
        )
        total, components = model.sample(_dist())
        assert total > 0
        assert {name for name, _ in components} == {
            COMPONENT_INTERCEPT, COMPONENT_PARSE, COMPONENT_FILTERS
        }


class TestByteIdentity:
    def test_default_total_is_the_legacy_lognormal_draw(self):
        """The default model's total must be bit-equal to one draw from
        the legacy (median=0.4ms, p99=1.4ms) lognormal — the contract
        keeping the seed's event times unchanged."""
        mu, sigma = lognormal_params_from_quantiles(0.0004, 0.0014)
        legacy = _dist()
        model_dist = _dist()
        model = ProxyCostModel()
        for _ in range(100):
            expected = legacy.lognormal(mu, sigma)
            total, _ = model.sample(model_dist)
            assert total == expected  # bit-equal, not approx

    def test_one_draw_per_sample(self):
        """sample() consumes exactly one lognormal draw regardless of
        options — stream alignment is what determinism hangs on."""
        a = _dist()
        b = _dist()
        model = ProxyCostModel(record_crypto_per_byte=1e-9,
                               parse_per_byte=1e-9)
        model.sample(a, nbytes=1000, mtls=True)
        model.sample(a, nbytes=0, l4=True)
        plain = ProxyCostModel()
        plain.sample(b)
        plain.sample(b)
        # Both streams are now aligned: the next draws agree.
        assert a.lognormal(0.0, 1.0) == b.lognormal(0.0, 1.0)

    def test_back_to_back_determinism(self):
        model = ProxyCostModel(parse_per_byte=1e-9, filter_per_request=2e-6)
        first = [model.sample(_dist(), nbytes=500) for _ in range(1)]
        second = [model.sample(_dist(), nbytes=500) for _ in range(1)]
        assert first == second


class TestDecomposition:
    def test_components_sum_to_total(self):
        model = ProxyCostModel(
            parse_per_byte=1e-9,
            filter_per_request=2e-6,
            record_crypto_per_byte=3e-9,
        )
        total, components = model.sample(_dist(), nbytes=4000, mtls=True)
        assert sum(value for _, value in components) == pytest.approx(
            total, rel=1e-12
        )
        names = [name for name, _ in components]
        assert COMPONENT_CRYPTO in names

    def test_l4_traversal_is_interception_only_and_cheaper(self):
        l7 = _dist()
        l4 = _dist()
        model = ProxyCostModel()
        full, _ = model.sample(l7)
        thin, components = model.sample(l4, l4=True)
        assert components == [(COMPONENT_INTERCEPT, thin)]
        assert thin == full * model.intercept_share
        assert thin < full

    def test_byte_and_request_extras_charged(self):
        base_dist = _dist()
        extra_dist = _dist()
        plain = ProxyCostModel()
        loaded = ProxyCostModel(parse_per_byte=1e-9, filter_per_request=5e-6)
        base, _ = plain.sample(base_dist, nbytes=10_000)
        total, _ = loaded.sample(extra_dist, nbytes=10_000)
        assert total == pytest.approx(base + 1e-9 * 10_000 + 5e-6, rel=1e-12)

    def test_no_crypto_without_mtls(self):
        model = ProxyCostModel(record_crypto_per_byte=1e-9)
        _, components = model.sample(_dist(), nbytes=1000, mtls=False)
        assert COMPONENT_CRYPTO not in [name for name, _ in components]
