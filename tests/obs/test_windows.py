"""Sliding-window counters and histograms (the online plane's core)."""

import pytest

from repro.obs import WindowedCounter, WindowedGauge, WindowedHistogram


class TestWindowedCounter:
    def test_counts_within_window(self):
        counter = WindowedCounter(window=4.0)
        counter.add(0.1)
        counter.add(1.0)
        counter.add(2.0, amount=3.0)
        assert counter.total(2.0) == 5.0

    def test_old_slices_expire(self):
        counter = WindowedCounter(window=4.0, slices=4)
        counter.add(0.1)
        counter.add(5.0)
        # At t=5 the window starts at a slice boundary >= 1.0: the t=0.1
        # sample expired, only the t=5 sample remains.
        assert counter.window_start(5.0) > 0.1
        assert counter.total(5.0) == 1.0

    def test_stale_add_is_dropped(self):
        counter = WindowedCounter(window=2.0, slices=2)
        counter.add(10.0)
        counter.add(0.5)  # far older than the live window
        assert counter.total(10.0) == 1.0

    def test_rate_uses_nominal_window(self):
        counter = WindowedCounter(window=2.0)
        for t in (0.1, 0.5, 1.0, 1.5):
            counter.add(t)
        assert counter.rate(1.5) == pytest.approx(4 / 2.0)

    def test_query_is_read_only(self):
        counter = WindowedCounter(window=1.0)
        counter.add(0.5)
        assert counter.total(0.5) == counter.total(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedCounter(window=0.0)
        with pytest.raises(ValueError):
            WindowedCounter(window=1.0, slices=0)


class TestWindowedGauge:
    def test_held_level_counts_without_further_sets(self):
        gauge = WindowedGauge(window=4.0)
        gauge.set(0.0, 2.0)
        # No further sets: the level is held, queries settle it.
        assert gauge.mean(2.0) == pytest.approx(2.0)
        assert gauge.maximum(2.0) == 2.0
        assert gauge.last == 2.0

    def test_time_weighted_mean_not_sample_mean(self):
        gauge = WindowedGauge(window=4.0)
        gauge.set(0.0, 0.0)
        gauge.set(1.0, 4.0)
        # Signal: 0 for 1 s, then 4 for 1 s.  A sample average would say
        # 2.0 regardless of hold times; so does this one — but shift the
        # switch point and the time weighting shows.
        assert gauge.mean(2.0) == pytest.approx(2.0)
        gauge2 = WindowedGauge(window=4.0)
        gauge2.set(0.0, 0.0)
        gauge2.set(3.0, 4.0)  # 0 held 3 s, 4 held 1 s
        # Slice-aligned window start at t=0.5: covered = [0.5, 4.0).
        assert gauge2.mean(4.0) == pytest.approx(4.0 / 3.5)

    def test_mean_uses_covered_seconds_only(self):
        gauge = WindowedGauge(window=4.0, slices=4)
        gauge.set(3.0, 6.0)  # covered: [3, 4) only, within window [0, 4]
        assert gauge.mean(4.0) == pytest.approx(6.0)

    def test_old_slices_expire(self):
        gauge = WindowedGauge(window=4.0, slices=4)
        gauge.set(0.0, 10.0)
        gauge.set(1.0, 0.0)
        # At t=10 the window covers [6, 10]: the 10.0 epoch expired and
        # the held 0.0 fills every live slice.
        assert gauge.mean(10.0) == 0.0
        assert gauge.maximum(10.0) == 0.0

    def test_spike_overwritten_at_same_time_registers_in_max(self):
        gauge = WindowedGauge(window=4.0)
        gauge.set(1.0, 5.0)
        gauge.set(1.0, 1.0)  # instantaneous spike, zero hold time
        assert gauge.maximum(1.0) == 5.0
        # The spike carries no duration: the mean sees only the 1.0 hold.
        assert gauge.mean(2.0) == pytest.approx(1.0)

    def test_stale_set_is_dropped(self):
        gauge = WindowedGauge(window=4.0)
        gauge.set(2.0, 3.0)
        gauge.set(0.5, 100.0)  # the signal already moved past t=0.5
        assert gauge.maximum(3.0) == 3.0
        assert gauge.mean(3.0) == pytest.approx(3.0)

    def test_long_idle_settle_is_slice_bounded(self):
        gauge = WindowedGauge(window=4.0, slices=4)
        gauge.set(0.0, 1.0)
        # Settling across a huge gap must not iterate per elapsed slice
        # width: only the live window's overlap is written.
        assert gauge.mean(1e6) == pytest.approx(1.0)
        assert len(gauge.slices) <= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedGauge(window=0.0)
        with pytest.raises(ValueError):
            WindowedGauge(window=1.0, slices=0)


class TestWindowedHistogram:
    def test_empty_window_quantile_is_zero(self):
        hist = WindowedHistogram(window=4.0)
        assert hist.count(0.0) == 0
        assert hist.quantile(0.0, 99.0) == 0.0

    def test_single_sample(self):
        hist = WindowedHistogram(window=4.0)
        hist.record(1.0, 0.010)
        assert hist.count(1.0) == 1
        assert hist.quantile(1.0, 50.0) == pytest.approx(0.010, rel=0.01)
        assert hist.quantile(1.0, 99.0) == pytest.approx(0.010, rel=0.01)

    def test_rolling_forgets_old_samples(self):
        hist = WindowedHistogram(window=2.0, slices=2)
        hist.record(0.1, 1.0)     # a huge early outlier
        hist.record(3.0, 0.001)
        # By t=3 the outlier's slice has expired entirely.
        assert hist.count(3.0) == 1
        assert hist.quantile(3.0, 99.0) == pytest.approx(0.001, rel=0.01)

    def test_exact_boundary_tick_lands_in_its_slice(self):
        # t == k * slice_width must land in slice k (the +1e-9 nudge).
        hist = WindowedHistogram(window=4.0, slices=8)  # slice width 0.5
        hist.record(0.5, 0.010)   # boundary: slice 1, not slice 0
        hist.record(4.0, 0.020)   # boundary: slice 8; live = slices 1..8
        assert hist.window_start(4.0) == pytest.approx(0.5)
        assert hist.count(4.0) == 2
        # One slice later the boundary sample's slice expires.
        assert hist.count(4.5) == 1

    def test_membership_predicate_is_slice_aligned(self):
        hist = WindowedHistogram(window=4.0, slices=8)
        samples = [(0.3, 0.001), (1.2, 0.002), (2.9, 0.004), (4.1, 0.008)]
        for t, v in samples:
            hist.record(t, v)
        now = 4.1
        start = hist.window_start(now)
        expected = [v for t, v in samples if t >= start]
        assert hist.count(now) == len(expected)

    def test_summary_matches_merged(self):
        hist = WindowedHistogram(window=4.0)
        for i in range(100):
            hist.record(i * 0.01, 0.001 * (i + 1))
        summary = hist.summary(1.0)
        assert summary.count == hist.count(1.0)
        assert summary.p99 == hist.quantile(1.0, 99.0)

    def test_memory_bounded_by_slices(self):
        hist = WindowedHistogram(window=1.0, slices=4)
        for i in range(10_000):
            hist.record(i * 0.01, 0.005)
        assert len(hist.slices) <= 4


class TestZeroSampleContract:
    """An empty or fully-expired window must answer well-defined zeros —
    never NaN, never an index error, never a stale value."""

    def test_empty_counter_total_and_rate_are_zero(self):
        counter = WindowedCounter(window=4.0)
        assert counter.total(0.0) == 0.0
        assert counter.rate(0.0) == 0.0
        assert counter.rate(1e9) == 0.0

    def test_fully_expired_counter_answers_zero(self):
        counter = WindowedCounter(window=2.0, slices=2)
        counter.add(0.5, amount=7.0)
        assert counter.total(0.5) == 7.0
        assert counter.total(100.0) == 0.0
        assert counter.rate(100.0) == 0.0

    def test_empty_histogram_summary_is_all_zero(self):
        hist = WindowedHistogram(window=4.0)
        summary = hist.summary(0.0)
        assert summary.count == 0
        assert (summary.p50, summary.p99) == (0.0, 0.0)
        assert hist.quantile(0.0, 50.0) == 0.0

    def test_fully_expired_histogram_answers_zero(self):
        hist = WindowedHistogram(window=2.0, slices=2)
        hist.record(0.5, 1.0)
        assert hist.quantile(0.5, 99.0) > 0.0
        assert hist.count(100.0) == 0
        assert hist.quantile(100.0, 99.0) == 0.0
        assert hist.summary(100.0).count == 0

    def test_never_set_gauge_is_zero(self):
        gauge = WindowedGauge(window=4.0)
        assert gauge.last == 0.0
        assert gauge.mean(0.0) == 0.0
        assert gauge.maximum(0.0) == 0.0
        assert gauge.mean(1e9) == 0.0
        assert gauge.maximum(1e9) == 0.0

    def test_zero_answers_do_not_resurrect_old_samples(self):
        # Querying an expired window must also *drop* the stale slices:
        # a later in-window sample stands alone.
        hist = WindowedHistogram(window=2.0, slices=2)
        hist.record(0.5, 1.0)
        assert hist.quantile(100.0, 99.0) == 0.0
        hist.record(100.5, 0.001)
        assert hist.count(100.5) == 1
        assert hist.quantile(100.5, 99.0) == pytest.approx(0.001, rel=0.01)
