"""The online SLO engine: specs, burn-rate rules, alert timeline."""

import pytest

from repro.obs import (
    AlertTimeline,
    BurnRateRule,
    MetricsRegistry,
    ObservabilityPlane,
    SloEngine,
    SloSpec,
    default_rules,
    timeline_csv,
)
from repro.sim import Simulator


def _spec(**overrides):
    base = dict(
        name="LS-p99", target="LS", threshold_s=0.015,
        quantile=99.0, window_s=4.0,
    )
    base.update(overrides)
    return SloSpec(**base)


#: A single aggressive rule so unit tests drive the state machine with
#: few observations: fire when both 2 s and 0.5 s windows burn >= 2x.
_RULE = BurnRateRule(
    name="fast", long_window_s=2.0, short_window_s=0.5,
    max_burn=2.0, min_samples=2,
)


def _feed(engine, t0, t1, step, latency):
    t = t0
    while t < t1:
        engine.observe("class", "LS", t, latency=latency)
        t += step


class TestSpecValidation:
    def test_budget(self):
        assert _spec(quantile=99.0).budget == pytest.approx(0.01)
        assert _spec(quantile=90.0).budget == pytest.approx(0.10)

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            _spec(quantile=100.0)
        with pytest.raises(ValueError):
            _spec(quantile=0.0)

    def test_rejects_bad_threshold_and_scope(self):
        with pytest.raises(ValueError):
            _spec(threshold_s=0.0)
        with pytest.raises(ValueError):
            _spec(scope="pod")

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            BurnRateRule(name="r", long_window_s=1.0, short_window_s=2.0)
        with pytest.raises(ValueError):
            BurnRateRule(
                name="r", long_window_s=2.0, short_window_s=1.0, max_burn=0.0
            )

    def test_default_rules_scale_with_window(self):
        fast, slow = default_rules(_spec(window_s=8.0))
        assert fast.long_window_s == 4.0 and fast.short_window_s == 1.0
        assert slow.long_window_s == 8.0 and slow.short_window_s == 2.0

    def test_duplicate_registration_rejected(self):
        engine = SloEngine().register(_spec())
        with pytest.raises(ValueError):
            engine.register(_spec())


class TestBurnRateAlerting:
    def test_fires_on_sustained_violation_and_resolves(self):
        engine = SloEngine()
        engine.register(_spec(), rules=(_RULE,))
        # 100% bad traffic (latency over threshold): burn = 100x budget.
        _feed(engine, 0.0, 2.0, 0.1, latency=0.050)
        engine.evaluate(2.0)
        assert engine.timeline.is_firing("LS-p99", "fast")
        # Recovery: fast traffic floods the short window.
        _feed(engine, 2.0, 4.0, 0.05, latency=0.001)
        engine.evaluate(4.0)
        assert not engine.timeline.is_firing("LS-p99", "fast")
        kinds = [e.kind for e in engine.timeline.events]
        assert kinds == ["fire", "resolve"]

    def test_healthy_traffic_never_fires(self):
        engine = SloEngine()
        engine.register(_spec(), rules=(_RULE,))
        _feed(engine, 0.0, 4.0, 0.05, latency=0.001)
        for t in (1.0, 2.0, 3.0, 4.0):
            engine.evaluate(t)
        assert engine.timeline.events == []

    def test_min_samples_guard_keeps_cold_start_quiet(self):
        engine = SloEngine()
        engine.register(_spec(), rules=(_RULE,))
        engine.observe("class", "LS", 0.1, latency=9.9)  # 1 bad sample
        engine.evaluate(0.2)
        assert engine.timeline.events == []

    def test_not_ok_counts_against_budget_without_latency(self):
        engine = SloEngine()
        engine.register(_spec(), rules=(_RULE,))
        t = 0.0
        while t < 2.0:
            engine.observe("class", "LS", t, ok=False)  # timeouts
            t += 0.1
        engine.evaluate(2.0)
        assert engine.timeline.is_firing("LS-p99", "fast")

    def test_unrouted_streams_are_ignored(self):
        engine = SloEngine()
        engine.register(_spec(), rules=(_RULE,))
        for i in range(40):
            engine.observe("class", "LI", i * 0.05, latency=9.9)
        engine.evaluate(2.0)
        assert engine.timeline.events == []

    def test_rolling_quantile_tracks_window(self):
        engine = SloEngine()
        engine.register(_spec(window_s=2.0), rules=(_RULE,))
        _feed(engine, 0.0, 1.0, 0.01, latency=0.010)
        assert engine.rolling_quantile("LS-p99", 1.0) == pytest.approx(
            0.010, rel=0.02
        )

    def test_registry_instrumentation(self):
        registry = MetricsRegistry()
        engine = SloEngine(registry=registry)
        engine.register(_spec(), rules=(_RULE,))
        _feed(engine, 0.0, 2.0, 0.1, latency=0.050)
        engine.evaluate(2.0)
        assert registry.counter_total("slo_observations_total", slo="LS-p99") > 0
        assert registry.counter_total("slo_alerts_total", kind="fire") == 1


class TestTimelineAccounting:
    def test_stats_and_union(self):
        timeline = AlertTimeline()
        timeline.fire(1.0, "S", "fast")
        timeline.fire(2.0, "S", "slow")
        timeline.resolve(3.0, "S", "fast")
        timeline.resolve(5.0, "S", "slow")
        stats = timeline.stats("S")
        assert stats.alerts_fired == 2
        assert stats.time_to_detect == 1.0
        assert stats.time_to_resolve == 5.0
        # Union of [1,3] and [2,5] is 4 s, not 5 s.
        assert stats.violation_seconds == pytest.approx(4.0)
        assert not stats.open_at_end

    def test_finalize_closes_open_alerts_without_resolve_event(self):
        timeline = AlertTimeline()
        timeline.fire(1.0, "S", "fast")
        timeline.finalize(4.0)
        assert timeline.stats("S").violation_seconds == pytest.approx(3.0)
        assert timeline.stats("S").open_at_end
        assert [e.kind for e in timeline.events] == ["fire"]

    def test_double_fire_and_orphan_resolve_are_noops(self):
        timeline = AlertTimeline()
        timeline.fire(1.0, "S", "fast")
        timeline.fire(2.0, "S", "fast")
        timeline.resolve(3.0, "S", "other")
        assert len(timeline.events) == 1

    def test_text_and_csv(self):
        timeline = AlertTimeline()
        timeline.fire(1.0, "S", "fast", 3.0, 4.0)
        timeline.resolve(2.0, "S", "fast", 1.0, 0.5)
        text = timeline.text(title="demo:")
        assert text.startswith("demo:")
        assert "FIRE" in text and "resolve" in text
        assert AlertTimeline().text() == "  (no alerts)"
        csv = timeline_csv({"off": timeline})
        lines = csv.splitlines()
        assert lines[0] == "config,slo,rule,kind,time_s,burn_long,burn_short"
        assert lines[1].startswith("off,S,fast,fire,1.000000")
        assert csv.endswith("\n") and not csv.endswith("\n\n")


class TestZeroOverheadContract:
    def test_attach_without_specs_spawns_nothing(self):
        sim = Simulator()
        assert SloEngine().attach(sim) is None
        assert sim.peek() == float("inf")

    def test_attach_with_specs_ticks(self):
        sim = Simulator()
        engine = SloEngine(eval_interval=0.5)
        engine.register(_spec(), rules=(_RULE,))
        assert engine.attach(sim) is not None
        _feed(engine, 0.0, 2.0, 0.1, latency=0.050)
        sim.run(until=2.1)
        assert engine.timeline.is_firing("LS-p99", "fast")

    def test_plane_without_slos_leaves_hook_none(self):
        class FakeMesh:
            pass

        class FakeTelemetry:
            registry = None
            attributor = None
            slo_engine = None

        mesh = FakeMesh()
        mesh.telemetry = FakeTelemetry()
        ObservabilityPlane().install(mesh=mesh)
        assert mesh.telemetry.slo_engine is None
        # An engine with no registered specs is also not installed.
        ObservabilityPlane(slo=SloEngine()).install(mesh=mesh)
        assert mesh.telemetry.slo_engine is None

    def test_plane_with_specs_installs_engine_and_adopts_registry(self):
        class FakeMesh:
            pass

        class FakeTelemetry:
            registry = None
            attributor = None
            slo_engine = None

        mesh = FakeMesh()
        mesh.telemetry = FakeTelemetry()
        engine = SloEngine().register(_spec())
        plane = ObservabilityPlane(slo=engine).install(mesh=mesh)
        assert mesh.telemetry.slo_engine is engine
        assert engine.registry is plane.registry
