"""The simulator's self-profiler: attribution, overhead posture, and
the zero-hooks-when-disabled contract."""

import os
import time

import pytest

from repro.experiments import ScenarioConfig, run_scenario
from repro.obs import MetricsRegistry, PROFILE_SCHEMA, SimProfiler, profile_text
from repro.obs.profile import classify_module
from repro.sim import Simulator


class TestAttachDetach:
    def test_disabled_simulator_installs_no_hooks(self):
        sim = Simulator()
        assert sim.profiler is None
        # The plain class method runs; no instance override exists.
        assert "step" not in sim.__dict__

    def test_attach_installs_instance_override(self):
        sim = Simulator()
        profiler = SimProfiler()
        sim.attach_profiler(profiler)
        assert sim.profiler is profiler
        assert "step" in sim.__dict__

    def test_detach_restores_plain_step(self):
        sim = Simulator()
        sim.attach_profiler(SimProfiler())
        sim.detach_profiler()
        assert sim.profiler is None
        assert "step" not in sim.__dict__

    def test_attach_none_detaches(self):
        sim = Simulator()
        sim.attach_profiler(SimProfiler())
        sim.attach_profiler(None)
        assert sim.profiler is None
        assert "step" not in sim.__dict__

    def test_profiled_run_matches_unprofiled(self):
        def ticker(sim, out):
            for _ in range(5):
                yield sim.timeout(1.0)
                out.append(sim.now)

        plain_out, prof_out = [], []
        plain = Simulator()
        plain.process(ticker(plain, plain_out))
        plain.run(until=10.0)
        profiled = Simulator()
        profiled.attach_profiler(SimProfiler())
        profiled.process(ticker(profiled, prof_out))
        profiled.run(until=10.0)
        assert prof_out == plain_out
        assert profiled.processed_events == plain.processed_events


class TestClassification:
    @pytest.mark.parametrize(
        ("module", "section"),
        [
            ("repro.mesh.sidecar", "sidecar"),
            ("repro.transport.tcp", "transport"),
            ("repro.net.qdisc", "qdisc"),
            ("repro.net.link", "transport"),
            ("repro.apps.elibrary", "app"),
            ("repro.cluster.cluster", "app"),
            ("repro.workload.generator", "workload"),
            ("repro.obs.metrics", "obs"),
            ("repro.sim.core", "dispatch"),
            ("repro.util.stats", "other"),
            ("some.other.package", "other"),
        ],
    )
    def test_module_rules(self, module, section):
        assert classify_module(module) == section

    def test_counts_sum_to_processed_events(self):
        result = run_scenario(
            ScenarioConfig(duration=1.0, warmup=0.25, rps=10, profile=True)
        )
        profiler = result.sim.profiler
        # Per-event charges (explicit sections add *extra* counts, so
        # compare against the report's events minus section entries by
        # reconstructing from charge-only runs is fragile; instead the
        # kernel guarantee is: every processed event charged exactly one
        # section, so the total is at least processed_events).
        assert sum(profiler.counts.values()) >= result.sim.processed_events
        assert profiler.counts.get("transport", 0) > 0
        assert profiler.counts.get("sidecar", 0) > 0
        assert profiler.counts.get("qdisc", 0) > 0

    def test_obs_section_charged_when_telemetry_profiled(self):
        result = run_scenario(
            ScenarioConfig(duration=1.0, warmup=0.25, rps=10, profile=True)
        )
        assert result.mesh.telemetry.profiler is result.sim.profiler
        assert result.sim.profiler.counts.get("obs", 0) > 0


class TestDeterminism:
    def test_event_counts_identical_across_runs(self):
        config = ScenarioConfig(duration=1.5, warmup=0.5, rps=12, profile=True)
        first = run_scenario(config).sim.profiler.report()
        second = run_scenario(config).sim.profiler.report()
        assert first["events"] == second["events"]
        # Wall-clock is host noise and deliberately NOT asserted equal.

    def test_profile_does_not_change_simulation(self):
        base = ScenarioConfig(duration=1.5, warmup=0.5, rps=12)
        plain = run_scenario(base)
        profiled = run_scenario(base, profile=True)
        assert plain.sim.processed_events == profiled.sim.processed_events
        assert plain.ls_summary().p99 == profiled.ls_summary().p99


class TestReporting:
    def _profiler(self):
        profiler = SimProfiler()
        profiler.charge(None, 0.25)
        with profiler.section("qdisc"):
            time.sleep(0.001)
        with profiler.phase("run"):
            time.sleep(0.001)
        profiler.add_phase("build", 0.5)
        return profiler

    def test_report_shape(self):
        report = self._profiler().report()
        assert report["schema"] == PROFILE_SCHEMA
        assert list(report["events"]) == sorted(report["events"])
        assert report["events"]["dispatch"] == 1
        assert report["events"]["qdisc"] == 1
        assert report["phases"]["build"] == {"count": 1, "seconds": 0.5}
        assert report["phases"]["run"]["count"] == 1

    def test_section_time_accumulates_child(self):
        profiler = SimProfiler()
        profiler._child = 0.0
        with profiler.section("obs"):
            pass
        assert profiler._child > 0.0
        assert profiler.seconds["obs"] == pytest.approx(profiler._child)

    def test_text_render_contract(self):
        report = self._profiler().report()
        text = profile_text(report, sim_time=10.0)
        assert text.endswith("\n")
        assert not text.endswith("\n\n")
        # Double render is byte-identical (exporter contract).
        assert text == profile_text(report, sim_time=10.0)
        assert "dispatch" in text and "total" in text
        assert "phase build" in text

    def test_to_registry_exports_counters(self):
        registry = MetricsRegistry()
        self._profiler().to_registry(registry)
        assert (
            registry.counter_total("sim_profile_events_total", section="qdisc")
            == 1
        )
        assert (
            registry.counter_total(
                "sim_profile_seconds_total", section="dispatch"
            )
            == pytest.approx(0.25)
        )


class TestOverhead:
    def test_profiler_overhead_within_budget(self):
        """Enabled profiling must stay close to the plain run on the
        smoke-scale Figure-4 scenario (~5% min-of-pairs on quiet
        hardware).  Shared CI runners show >20% run-to-run swings on
        *identical* code, so the always-on bound is a loose catastrophe
        guard (the naive per-event implementation measured +68% and
        must never come back); set ``REPRO_PERF_STRICT=1`` on quiet
        hardware to assert the tight bound."""
        limit = 1.15 if os.environ.get("REPRO_PERF_STRICT") else 1.5
        config = ScenarioConfig(duration=1.5, warmup=0.5, rps=15)
        # Warm both paths once (imports, allocator pools).
        run_scenario(config)
        run_scenario(config, profile=True)
        plain_times, profiled_times = [], []
        for _ in range(3):
            start = time.perf_counter()
            run_scenario(config)
            plain_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            run_scenario(config, profile=True)
            profiled_times.append(time.perf_counter() - start)
        plain, profiled = min(plain_times), min(profiled_times)
        assert profiled <= plain * limit, (plain_times, profiled_times)
