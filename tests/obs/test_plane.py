"""ObservabilityPlane wiring: install hooks and the harvest sweep."""

from types import SimpleNamespace

from repro.obs import ObservabilityPlane


class FakeTelemetry:
    def __init__(self):
        self.registry = None
        self.attributor = None


def fake_network():
    def iface(name):
        return SimpleNamespace(
            name=name,
            queue_observer=None,
            bytes_transmitted=1000,
            packets_transmitted=10,
            qdisc=SimpleNamespace(
                stats=SimpleNamespace(dropped=2, queue_wait_seconds=0.5)
            ),
        )

    return SimpleNamespace(
        devices={
            "node-b": SimpleNamespace(interfaces=[iface("node-b-eth0")]),
            "node-a": SimpleNamespace(interfaces=[iface("node-a-eth0")]),
        }
    )


def test_install_mesh_adopts_registry_and_attributor():
    mesh = SimpleNamespace(telemetry=FakeTelemetry())
    plane = ObservabilityPlane().install(mesh=mesh)
    assert mesh.telemetry.registry is plane.registry
    assert mesh.telemetry.attributor is plane.attributor
    assert plane.installed


def test_install_cluster_wires_transport_and_interfaces():
    network = fake_network()
    cluster = SimpleNamespace(
        network=network, transport_config=SimpleNamespace(metrics=None)
    )
    plane = ObservabilityPlane().install(cluster=cluster)
    assert cluster.transport_config.metrics is plane.registry
    for device in network.devices.values():
        for interface in device.interfaces:
            assert interface.queue_observer == plane.attributor.observe_queue_wait


def test_install_tolerates_missing_transport_config():
    cluster = SimpleNamespace(network=fake_network(), transport_config=None)
    ObservabilityPlane().install(cluster=cluster)  # must not raise


def test_install_explicit_network_only():
    network = fake_network()
    plane = ObservabilityPlane().install(network=network)
    interface = network.devices["node-a"].interfaces[0]
    assert interface.queue_observer == plane.attributor.observe_queue_wait


def test_harvest_folds_interface_and_qdisc_counters():
    plane = ObservabilityPlane()
    plane.harvest(network=fake_network())
    registry = plane.registry
    assert registry.counter_total("interface_bytes_transmitted_total") == 2000
    assert registry.counter_total("interface_packets_transmitted_total") == 20
    assert registry.counter_total("qdisc_dropped_total") == 4
    assert (
        registry.counter_total(
            "qdisc_queue_wait_seconds_total", iface="node-a-eth0"
        )
        == 0.5
    )


def test_harvest_ingests_tracer():
    plane = ObservabilityPlane()
    plane.harvest(mesh=SimpleNamespace(tracer=SimpleNamespace(traces=[])))
    assert plane.spans.traces_seen == 0
