"""Unit tests for per-layer latency attribution (the interval sweep)."""

import pytest

from repro.obs import (
    LAYER_APP,
    LAYER_PROXY,
    LAYER_QUEUE,
    LAYER_RETRY,
    LAYER_TRANSPORT,
    LAYERS,
    LayerAttributor,
    decompose,
)


class FakePacket:
    def __init__(self, flow_id, enqueued_at):
        self.flow_id = flow_id
        self.enqueued_at = enqueued_at


class TestDecompose:
    def test_uncovered_time_is_transport(self):
        components, segments = decompose(0.0, 10.0, [])
        assert components[LAYER_TRANSPORT] == 10.0
        assert segments == [(LAYER_TRANSPORT, 0.0, 10.0)]

    def test_partition_sums_exactly(self):
        intervals = [
            (LAYER_APP, 1.0, 3.0),
            (LAYER_PROXY, 2.5, 4.0),
            (LAYER_QUEUE, 3.5, 5.0),
            (LAYER_RETRY, 6.0, 7.0),
        ]
        components, _segments = decompose(0.0, 10.0, intervals)
        assert sum(components.values()) == 10.0
        # Overlaps resolve by priority: app > proxy > queue > retry.
        assert components[LAYER_APP] == 2.0
        assert components[LAYER_PROXY] == 1.0
        assert components[LAYER_QUEUE] == 1.0
        assert components[LAYER_RETRY] == 1.0
        assert components[LAYER_TRANSPORT] == 5.0

    def test_intervals_clipped_to_window(self):
        components, _ = decompose(5.0, 10.0, [(LAYER_APP, 0.0, 7.0)])
        assert components[LAYER_APP] == 2.0
        assert components[LAYER_TRANSPORT] == 3.0

    def test_transport_inputs_ignored(self):
        # Transport is the residual, never an explicit interval.
        components, _ = decompose(0.0, 4.0, [(LAYER_TRANSPORT, 0.0, 4.0)])
        assert components[LAYER_TRANSPORT] == 4.0

    def test_zero_window(self):
        components, segments = decompose(3.0, 3.0, [(LAYER_APP, 0.0, 9.0)])
        assert sum(components.values()) == 0.0
        assert segments == []

    def test_adjacent_same_layer_segments_merge(self):
        intervals = [(LAYER_APP, 0.0, 1.0), (LAYER_APP, 1.0, 2.0)]
        _, segments = decompose(0.0, 2.0, intervals)
        assert segments == [(LAYER_APP, 0.0, 2.0)]

    def test_overlapping_same_layer_not_double_counted(self):
        # Parallel fan-out: two children's proxy work overlaps in time.
        intervals = [(LAYER_PROXY, 1.0, 3.0), (LAYER_PROXY, 2.0, 4.0)]
        components, _ = decompose(0.0, 5.0, intervals)
        assert components[LAYER_PROXY] == 3.0
        assert sum(components.values()) == 5.0


class TestLayerAttributor:
    def test_lifecycle_and_exact_sum(self):
        attributor = LayerAttributor()
        attributor.start_request("r1", "LS", 0.0)
        attributor.record("r1", LAYER_APP, 0.2, 0.5)
        attributor.record("r1", LAYER_PROXY, 0.5, 0.6)
        attribution = attributor.finish_request("r1", 1.0)
        assert attribution.elapsed == 1.0
        assert sum(attribution.components.values()) == pytest.approx(1.0)
        assert attribution.attribution_error < 1e-12

    def test_unknown_root_dropped(self):
        attributor = LayerAttributor()
        attributor.record("ghost", LAYER_APP, 0.0, 1.0)
        assert attributor.dropped_intervals == 1
        assert attributor.finish_request("ghost", 1.0) is None

    def test_none_root_ignored_silently(self):
        attributor = LayerAttributor()
        attributor.record(None, LAYER_APP, 0.0, 1.0)
        assert attributor.dropped_intervals == 0

    def test_record_after_finish_dropped(self):
        attributor = LayerAttributor()
        attributor.start_request("r1", "LS", 0.0)
        attributor.finish_request("r1", 1.0)
        attributor.record("r1", LAYER_APP, 0.5, 0.8)
        assert attributor.dropped_intervals == 1

    def test_flow_claims_route_queue_wait(self):
        attributor = LayerAttributor()
        attributor.start_request("r1", "LS", 0.0)
        attributor.claim_flow(7, "r1")
        attributor.observe_queue_wait(FakePacket(7, 0.1), 0.4)
        attributor.release_flow(7, "r1")
        # After release the flow no longer maps to the request.
        attributor.observe_queue_wait(FakePacket(7, 0.5), 0.6)
        attribution = attributor.finish_request("r1", 1.0)
        assert attribution.components[LAYER_QUEUE] == pytest.approx(0.3)

    def test_release_only_matching_root(self):
        attributor = LayerAttributor()
        attributor.claim_flow(1, "a")
        attributor.release_flow(1, "b")  # someone else's release: no-op
        assert attributor.flow_root(1) == "a"
        attributor.release_flow(1)  # unconditional release
        assert attributor.flow_root(1) is None

    def test_class_report_window_and_errors(self):
        attributor = LayerAttributor()
        attributor.start_request("warm", "LS", 0.5)
        attributor.finish_request("warm", 1.0)
        attributor.start_request("in1", "LS", 2.0)
        attributor.record("in1", LAYER_APP, 2.0, 2.4)
        attributor.finish_request("in1", 3.0)
        attributor.start_request("in2", "LS", 2.5)
        attributor.finish_request("in2", 3.0, status=503)
        report = attributor.class_report(window=(1.5, 4.0))
        row = report["LS"]
        assert row["count"] == 2  # "warm" started before the window
        assert row["errors"] == 1
        assert row["e2e_mean"] == pytest.approx(0.75)
        total = sum(row["layer_means"][layer] for layer in LAYERS)
        assert total == pytest.approx(row["e2e_mean"])

    def test_exemplar_is_median_latency(self):
        attributor = LayerAttributor()
        for root, elapsed in (("a", 1.0), ("b", 2.0), ("c", 9.0)):
            attributor.start_request(root, "LS", 0.0)
            attributor.finish_request(root, elapsed)
        exemplar = attributor.exemplar("LS")
        assert exemplar.root == "b"
        assert attributor.exemplar("missing") is None

    def test_hedge_fault_and_retry_layers_exist(self):
        # The layer vocabulary is closed: reports carry all five keys.
        attributor = LayerAttributor()
        attributor.start_request("r", "LI", 0.0)
        attributor.record("r", LAYER_RETRY, 0.1, 0.2)
        attribution = attributor.finish_request("r", 1.0)
        assert set(attribution.components) == set(LAYERS)
