"""Root-cause localization: anomaly scoring, the DAG-walk demotion,
and the alert wiring contract."""

import pytest

from repro.mesh.telemetry import RequestRecord
from repro.obs import GraphCollector, RootCauseLocalizer
from repro.obs.attribution import LAYER_APP, LAYER_QUEUE, LAYER_RETRY
from repro.obs.localize import DEMOTION_FACTOR, DOMINANCE_RATIO
from repro.obs.slo import SloSpec


def _record(time, source, destination, latency=0.010, status=200,
            request_class="LS", server_seconds=None):
    return RequestRecord(
        time=time,
        source=source,
        destination=destination,
        latency=latency,
        status=status,
        request_class=request_class,
        server_seconds=server_seconds,
    )


CHAIN = [("ingress-gateway", "frontend"), ("frontend", "backend"),
         ("backend", "db")]


def _healthy_graph(window=4.0):
    """gateway -> frontend -> backend -> db, healthy, baseline frozen."""
    graph = GraphCollector(window=window)
    for i in range(20):
        for src, dst in CHAIN:
            graph.observe_request(
                _record(0.1 * i, src, dst, latency=0.010, server_seconds=0.009)
            )
    graph.freeze_baseline(2.0)
    return graph


def _traffic(graph, start, stop, slow=()):
    """Healthy traffic on every edge from ``start`` to ``stop``; edges
    in ``slow`` additionally accrue retry-layer anomaly seconds."""
    t = start
    while t < stop:
        for src, dst in CHAIN:
            graph.observe_request(
                _record(t, src, dst, latency=0.010, server_seconds=0.009)
            )
            if (src, dst) in slow:
                graph.observe_layer(src, dst, LAYER_RETRY, 0.030, t)
        t += 0.1


class TestScoring:
    def test_anomalous_edge_ranks_first_with_its_layer(self):
        graph = _healthy_graph()
        _traffic(graph, 4.0, 8.0, slow=[("frontend", "backend")])
        diagnosis = RootCauseLocalizer(graph).diagnose(8.0, request_class="LS")
        top = diagnosis.top
        assert (top.kind, top.name) == ("edge", "frontend->backend")
        assert top.dominant_layer == LAYER_RETRY
        assert not top.demoted
        assert top.deviations[LAYER_RETRY] == pytest.approx(0.030, rel=0.05)
        assert "frontend->backend" in diagnosis.text()

    def test_error_deviation_scores_without_latency_change(self):
        graph = _healthy_graph()
        t = 4.0
        while t < 8.0:
            for src, dst in CHAIN:
                status = 503 if (src, dst) == ("backend", "db") else 200
                graph.observe_request(
                    _record(t, src, dst, status=status, server_seconds=0.009)
                )
            t += 0.1
        diagnosis = RootCauseLocalizer(graph).diagnose(8.0, request_class="LS")
        assert diagnosis.top.name == "backend->db"
        assert diagnosis.top.error_deviation == pytest.approx(1.0)

    def test_node_app_regression_is_a_node_culprit(self):
        graph = _healthy_graph()
        _traffic(graph, 4.0, 8.0)
        for i in range(10):
            graph.observe_app("backend", 0.050, 6.0 + 0.1 * i)
        diagnosis = RootCauseLocalizer(graph).diagnose(8.0, request_class="LS")
        assert (diagnosis.top.kind, diagnosis.top.name) == ("node", "backend")
        assert diagnosis.top.dominant_layer == LAYER_APP

    def test_edges_off_the_class_dag_are_skipped(self):
        graph = _healthy_graph()
        _traffic(graph, 4.0, 8.0)
        # A violently anomalous edge that never carries the LS class.
        for i in range(10):
            graph.observe_request(
                _record(7.0 + 0.05 * i, "batchd", "warehouse",
                        latency=5.0, request_class="LI")
            )
        diagnosis = RootCauseLocalizer(graph).diagnose(8.0, request_class="LS")
        assert all(c.name != "batchd->warehouse" for c in diagnosis.culprits)

    def test_healthy_graph_yields_no_culprits(self):
        graph = _healthy_graph()
        _traffic(graph, 4.0, 8.0)
        diagnosis = RootCauseLocalizer(graph).diagnose(8.0, request_class="LS")
        assert diagnosis.culprits == []
        assert diagnosis.top is None
        assert "(no anomalous edges or nodes)" in diagnosis.text()


class TestDagWalkDemotion:
    def test_upstream_edge_dominated_by_deeper_anomaly_is_demoted(self):
        # Fault at backend->db; per-try timeouts bleed comparable pain
        # into frontend->backend above it.  The deeper edge must win.
        graph = _healthy_graph()
        _traffic(
            graph, 4.0, 8.0,
            slow=[("frontend", "backend"), ("backend", "db")],
        )
        diagnosis = RootCauseLocalizer(graph).diagnose(8.0, request_class="LS")
        assert diagnosis.top.name == "backend->db"
        shallow = next(
            c for c in diagnosis.culprits if c.name == "frontend->backend"
        )
        assert shallow.demoted
        assert "(downstream-dominated)" in shallow.line()
        assert shallow.score == pytest.approx(
            diagnosis.top.score * DEMOTION_FACTOR, rel=0.05
        )

    def test_minor_downstream_noise_does_not_steal_blame(self):
        # Collateral anomaly below the faulted hop under the dominance
        # ratio: the faulted edge keeps its full score.
        graph = _healthy_graph()
        t = 4.0
        while t < 8.0:
            for src, dst in CHAIN:
                graph.observe_request(
                    _record(t, src, dst, latency=0.010, server_seconds=0.009)
                )
            graph.observe_layer("frontend", "backend", LAYER_RETRY, 0.030, t)
            graph.observe_layer(
                "backend", "db", LAYER_QUEUE,
                0.030 * DOMINANCE_RATIO * 0.8, t,
            )
            t += 0.1
        diagnosis = RootCauseLocalizer(graph).diagnose(8.0, request_class="LS")
        assert diagnosis.top.name == "frontend->backend"
        assert not diagnosis.top.demoted


class TestAlertWiring:
    def _spec(self):
        return SloSpec(
            name="LS-p99", target="LS", threshold_s=0.05, window_s=4.0
        )

    def test_on_alert_captures_first_diagnosis_only(self):
        graph = _healthy_graph()
        _traffic(graph, 4.0, 8.0, slow=[("frontend", "backend")])
        localizer = RootCauseLocalizer(graph)
        localizer.on_alert(8.0, self._spec(), "fast-burn")
        first = localizer.diagnosis
        assert first is not None
        assert first.slo == "LS-p99"
        assert first.rule == "fast-burn"
        assert first.request_class == "LS"
        localizer.on_alert(8.5, self._spec(), "slow-burn")
        assert localizer.diagnosis is first
        assert [rule for _t, _s, rule in localizer.alerts] == [
            "fast-burn", "slow-burn",
        ]

    def test_no_diagnosis_before_baseline(self):
        graph = GraphCollector(window=4.0)
        localizer = RootCauseLocalizer(graph)
        localizer.on_alert(1.0, self._spec(), "fast-burn")
        assert localizer.diagnosis is None
        assert len(localizer.alerts) == 1


class TestDeterminism:
    def _run(self):
        graph = _healthy_graph()
        _traffic(
            graph, 4.0, 8.0,
            slow=[("frontend", "backend"), ("backend", "db")],
        )
        return RootCauseLocalizer(graph).diagnose(8.0, request_class="LS")

    def test_identical_inputs_identical_text(self):
        assert self._run().text() == self._run().text()
