"""Critical-path span collection over hand-built traces."""

import pytest

from repro.mesh.tracing import Span, Trace, Tracer
from repro.obs import MetricsRegistry, SpanCollector


def _span(trace_id, span_id, parent, service, start, end):
    return Span(
        trace_id=trace_id,
        span_id=span_id,
        parent_span_id=parent,
        service=service,
        operation="GET /",
        start_time=start,
        end_time=end,
    )


def _fanout_trace(trace_id="trace-1"):
    """frontend(0..10) -> {cache(1..3), backend(2..9) -> db(3..7)}.

    Critical path is frontend -> backend -> db (backend ends latest).
    """
    trace = Trace(trace_id)
    trace.spans = [
        _span(trace_id, "s1", None, "frontend", 0.0, 10.0),
        _span(trace_id, "s2", "s1", "cache", 1.0, 3.0),
        _span(trace_id, "s3", "s1", "backend", 2.0, 9.0),
        _span(trace_id, "s4", "s3", "db", 3.0, 7.0),
    ]
    return trace


class TestSpanCollector:
    def test_exclusive_time_subtracts_on_path_child(self):
        collector = SpanCollector()
        steps = collector.ingest_trace(_fanout_trace())
        assert [s.service for s in steps] == ["frontend", "backend", "db"]
        assert steps[0].duration == 10.0
        # frontend exclusive = 10 - backend's 7; off-path cache is not
        # subtracted (it overlapped the on-path child).
        assert steps[0].exclusive == pytest.approx(3.0)
        assert steps[1].exclusive == pytest.approx(3.0)  # 7 - db's 4
        assert steps[2].exclusive == pytest.approx(4.0)  # leaf: full duration
        assert collector.traces_seen == 1
        assert collector.spans_seen == 4

    def test_exclusive_clamped_nonnegative(self):
        # A child reported longer than its parent (clock skew in real
        # systems; here just defensive) must not yield negative time.
        trace = Trace("trace-odd")
        trace.spans = [
            _span("trace-odd", "s1", None, "a", 0.0, 1.0),
            _span("trace-odd", "s2", "s1", "b", 0.0, 5.0),
        ]
        steps = SpanCollector().ingest_trace(trace)
        assert steps[0].exclusive == 0.0

    def test_unfinished_spans_skipped(self):
        trace = _fanout_trace()
        trace.spans.append(_span("trace-1", "s5", "s4", "orphan", 4.0, None))
        steps = SpanCollector().ingest_trace(trace)
        assert "orphan" not in [s.service for s in steps]

    def test_service_rows_sorted_by_total_exclusive(self):
        collector = SpanCollector()
        collector.ingest_trace(_fanout_trace("trace-1"))
        collector.ingest_trace(_fanout_trace("trace-2"))
        rows = collector.service_rows()
        assert [r[0] for r in rows] == ["db", "backend", "frontend"]
        service, count, total, mean = rows[0]
        assert (count, total, mean) == (2, pytest.approx(8.0), pytest.approx(4.0))

    def test_registry_histograms_fed(self):
        registry = MetricsRegistry()
        SpanCollector(registry).ingest_trace(_fanout_trace())
        hists = registry.histograms_matching("critical_path_exclusive_seconds")
        assert sum(h.count for h in hists) == 3

    def test_ingest_tracer_sorted_and_counted(self):
        tracer = Tracer()
        for trace in (_fanout_trace("trace-b"), _fanout_trace("trace-a")):
            for span in trace.spans:
                tracer.record(span)
        collector = SpanCollector()
        assert collector.ingest(tracer) == 2
        assert collector.traces_seen == 2

    def test_empty_trace_is_harmless(self):
        collector = SpanCollector()
        assert collector.ingest_trace(Trace("trace-empty")) == []
        assert collector.service_rows() == []


def _client_span(trace_id, span_id, parent, service, callee, start, end,
                 retries=0):
    span = Span(
        trace_id=trace_id,
        span_id=span_id,
        parent_span_id=parent,
        service=service,
        operation=f"client:{callee}/",
        start_time=start,
        end_time=end,
    )
    if retries:
        span.tags["retries"] = retries
    return span


class TestEdgeDiscovery:
    """Trace-derived service-graph edges (client spans name the callee)."""

    def test_client_spans_reveal_edges(self):
        trace = Trace("trace-1")
        trace.spans = [
            _span("trace-1", "s1", None, "frontend", 0.0, 10.0),
            _client_span("trace-1", "s2", "s1", "frontend", "backend", 1.0, 9.0),
        ]
        collector = SpanCollector()
        collector.ingest_trace(trace)
        assert collector.edge_counts == {("frontend", "backend"): 1}

    def test_hedged_cancelled_loser_still_counts_once(self):
        # A hedged hop records ONE client span however many duplicates
        # raced (the losers are transport tries, not spans); a server
        # span from the cancelled loser arrives unfinished.  The edge
        # counts once and the unfinished span stays off the critical
        # path without breaking ingestion.
        trace = Trace("trace-hedge")
        trace.spans = [
            _span("trace-hedge", "s1", None, "frontend", 0.0, 10.0),
            _client_span("trace-hedge", "s2", "s1", "frontend", "backend",
                         1.0, 9.0),
            _span("trace-hedge", "s3", "s2", "backend", 1.2, 8.8),   # winner
            _span("trace-hedge", "s4", "s2", "backend", 1.5, None),  # loser
        ]
        collector = SpanCollector()
        steps = collector.ingest_trace(trace)
        assert collector.edge_counts == {("frontend", "backend"): 1}
        assert collector.spans_seen == 4
        # The cancelled loser never finished: not on the critical path.
        assert [s.service for s in steps].count("backend") == 1

    def test_retried_hop_is_one_client_span_one_edge_count(self):
        # Retries happen under one client span (the span carries a
        # retries count); the hop is one logical edge traversal.
        trace = Trace("trace-retry")
        trace.spans = [
            _span("trace-retry", "s1", None, "frontend", 0.0, 10.0),
            _client_span("trace-retry", "s2", "s1", "frontend", "backend",
                         1.0, 9.0, retries=2),
        ]
        collector = SpanCollector()
        collector.ingest_trace(trace)
        assert collector.edge_counts == {("frontend", "backend"): 1}

    def test_ambient_local_hop_discovered_with_zero_wire_events(self):
        # Ambient node-local delivery never touches the network, so the
        # hop produces zero wire events — the client span is the only
        # witness, and it alone must reveal the edge.
        trace = Trace("trace-local")
        trace.spans = [
            _span("trace-local", "s1", None, "frontend", 0.0, 1.0),
            _client_span("trace-local", "s2", "s1", "frontend",
                         "local-cache", 0.1, 0.2),
        ]
        collector = SpanCollector()
        collector.ingest_trace(trace)
        assert collector.edge_counts == {("frontend", "local-cache"): 1}

    def test_operation_path_is_stripped_to_service(self):
        trace = Trace("trace-path")
        trace.spans = [
            Span(
                trace_id="trace-path", span_id="s1", parent_span_id=None,
                service="frontend", operation="client:backend/api/v1/items",
                start_time=0.0, end_time=1.0,
            ),
        ]
        collector = SpanCollector()
        collector.ingest_trace(trace)
        assert collector.edge_counts == {("frontend", "backend"): 1}
