"""Prometheus text exposition: format and line-level round-trip."""

import math

import pytest

from repro.obs import MetricsRegistry, parse_prometheus_text, prometheus_text


def _registry():
    registry = MetricsRegistry()
    registry.counter("mesh_requests_total", source="gw", destination="fe").inc(3)
    registry.counter("mesh_requests_total", source="fe", destination="db").inc(7)
    registry.gauge("queue_depth", iface="eth0").set(4.0)
    hist = registry.histogram("latency_seconds", destination="fe")
    for value in (0.001, 0.002, 0.004, 0.040):
        hist.record(value)
    return registry


class TestExposition:
    def test_type_lines_and_series(self):
        text = prometheus_text(_registry().snapshot())
        lines = text.splitlines()
        assert "# TYPE mesh_requests_total counter" in lines
        assert "# TYPE queue_depth gauge" in lines
        assert "# TYPE latency_seconds histogram" in lines
        assert (
            'mesh_requests_total{destination="fe",source="gw"} 3' in lines
        )
        assert 'queue_depth{iface="eth0"} 4' in lines
        assert 'queue_depth_max{iface="eth0"} 4' in lines

    def test_histogram_buckets_cumulative_with_inf(self):
        text = prometheus_text(_registry().snapshot())
        buckets = [
            line for line in text.splitlines()
            if line.startswith("latency_seconds_bucket")
        ]
        values = [float(line.rpartition(" ")[2]) for line in buckets]
        assert values == sorted(values)  # cumulative
        assert 'le="+Inf"' in buckets[-1]
        assert values[-1] == 4
        assert "latency_seconds_count" in text
        assert "latency_seconds_sum" in text

    def test_trailing_newline_and_byte_stability(self):
        snapshot = _registry().snapshot()
        text = prometheus_text(snapshot)
        assert text.endswith("\n") and not text.endswith("\n\n")
        assert text == prometheus_text(snapshot)

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("weird_total", label='a"b\\c\nd').inc()
        text = prometheus_text(registry.snapshot())
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        parsed = parse_prometheus_text(text)
        assert parsed["samples"]['weird_total{label=a"b\\c\nd}'] == 1


class TestRoundTrip:
    def test_full_round_trip(self):
        snapshot = _registry().snapshot()
        parsed = parse_prometheus_text(prometheus_text(snapshot))
        assert parsed["types"] == {
            "mesh_requests_total": "counter",
            "queue_depth": "gauge",
            "queue_depth_max": "gauge",
            "latency_seconds": "histogram",
        }
        samples = parsed["samples"]
        assert samples["mesh_requests_total{destination=fe,source=gw}"] == 3
        assert samples["mesh_requests_total{destination=db,source=fe}"] == 7
        assert samples["queue_depth{iface=eth0}"] == 4.0
        # Histogram invariants survive the text form.
        count_key = "latency_seconds_count{destination=fe}"
        assert samples[count_key] == 4
        inf_bucket = [
            key for key in samples
            if key.startswith("latency_seconds_bucket") and "le=+Inf" in key
        ]
        assert len(inf_bucket) == 1
        assert samples[inf_bucket[0]] == samples[count_key]
        total = samples["latency_seconds_sum{destination=fe}"]
        assert total == pytest.approx(0.047)

    def test_parse_handles_inf_values(self):
        parsed = parse_prometheus_text("x +Inf\ny -Inf\n")
        assert parsed["samples"]["x"] == math.inf
        assert parsed["samples"]["y"] == -math.inf

    def test_unlabeled_series(self):
        registry = MetricsRegistry()
        registry.counter("plain_total").inc(2)
        parsed = parse_prometheus_text(prometheus_text(registry.snapshot()))
        assert parsed["samples"]["plain_total"] == 2
