"""``repro compare``: run-snapshot diffing and the regression verdict."""

import pytest

from repro.cli import main
from repro.obs import MetricsRegistry, compare_runs
from repro.obs.export import snapshot_json, waterfall_csv


def _snapshot_text(latencies):
    registry = MetricsRegistry()
    hist = registry.histogram("latency_seconds", destination="fe")
    for value in latencies:
        hist.record(value)
    return snapshot_json(registry.snapshot())


def _attribution_text(e2e_mean):
    report = {
        "LS": {
            "count": 10,
            "e2e_mean": e2e_mean,
            "layer_means": {
                "app": e2e_mean, "proxy": 0.0, "retry": 0.0,
                "transport": 0.0, "queue": 0.0,
            },
            "max_error": 0.0,
        }
    }
    return waterfall_csv({"off": report})


def _write_run(path, latencies, e2e_mean):
    path.mkdir(exist_ok=True)
    (path / "metrics.json").write_text(_snapshot_text(latencies))
    (path / "attribution.csv").write_text(_attribution_text(e2e_mean))


BASE = [0.010] * 99 + [0.020]


class TestCompareRuns:
    def test_identical_runs_pass(self, tmp_path):
        _write_run(tmp_path / "a", BASE, 0.010)
        _write_run(tmp_path / "b", BASE, 0.010)
        report = compare_runs(tmp_path / "a", tmp_path / "b")
        assert report.ok
        assert report.compared > 0
        assert "OK: no regressions" in report.text()

    def test_injected_quantile_regression_fails(self, tmp_path):
        _write_run(tmp_path / "a", BASE, 0.010)
        _write_run(tmp_path / "b", [v * 2 for v in BASE], 0.010)
        report = compare_runs(tmp_path / "a", tmp_path / "b")
        assert not report.ok
        stats = {(d.metric, d.stat) for d in report.regressions}
        assert ("latency_seconds{destination=fe}", "p99") in stats
        assert "REGRESSION" in report.text()

    def test_attribution_mean_regression_fails(self, tmp_path):
        _write_run(tmp_path / "a", BASE, 0.010)
        _write_run(tmp_path / "b", BASE, 0.020)
        report = compare_runs(tmp_path / "a", tmp_path / "b")
        assert [d.stat for d in report.regressions] == ["e2e_mean"]

    def test_small_absolute_deltas_never_regress(self, tmp_path):
        # 50% relative but only 50 us absolute: under the 1e-4 s floor.
        _write_run(tmp_path / "a", [0.0001] * 100, 0.0001)
        _write_run(tmp_path / "b", [0.00015] * 100, 0.00015)
        assert compare_runs(tmp_path / "a", tmp_path / "b").ok

    def test_speedup_is_not_a_regression(self, tmp_path):
        _write_run(tmp_path / "a", BASE, 0.010)
        _write_run(tmp_path / "b", [v / 2 for v in BASE], 0.005)
        assert compare_runs(tmp_path / "a", tmp_path / "b").ok

    def test_missing_candidate_file_fails(self, tmp_path):
        _write_run(tmp_path / "a", BASE, 0.010)
        _write_run(tmp_path / "b", BASE, 0.010)
        (tmp_path / "b" / "attribution.csv").unlink()
        report = compare_runs(tmp_path / "a", tmp_path / "b")
        assert not report.ok
        assert "attribution.csv" in report.missing

    def test_single_file_pair(self, tmp_path):
        (tmp_path / "a.json").write_text(_snapshot_text(BASE))
        (tmp_path / "b.json").write_text(_snapshot_text([v * 3 for v in BASE]))
        report = compare_runs(tmp_path / "a.json", tmp_path / "b.json")
        assert not report.ok

    def test_non_snapshot_files_are_skipped(self, tmp_path):
        _write_run(tmp_path / "a", BASE, 0.010)
        _write_run(tmp_path / "b", BASE, 0.010)
        (tmp_path / "a" / "notes.json").write_text('{"data": []}')
        (tmp_path / "b" / "notes.json").write_text('{"data": []}')
        assert compare_runs(tmp_path / "a", tmp_path / "b").ok

    def test_threshold_is_respected(self, tmp_path):
        _write_run(tmp_path / "a", BASE, 0.010)
        _write_run(tmp_path / "b", [v * 1.5 for v in BASE], 0.010)
        assert not compare_runs(tmp_path / "a", tmp_path / "b").ok
        assert compare_runs(
            tmp_path / "a", tmp_path / "b", threshold=1.0
        ).ok


class TestCompareCli:
    def test_exit_zero_on_identical(self, tmp_path, capsys):
        _write_run(tmp_path / "a", BASE, 0.010)
        _write_run(tmp_path / "b", BASE, 0.010)
        code = main(["compare", str(tmp_path / "a"), str(tmp_path / "b")])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_exit_nonzero_on_regression(self, tmp_path, capsys):
        _write_run(tmp_path / "a", BASE, 0.010)
        _write_run(tmp_path / "b", [v * 2 for v in BASE], 0.010)
        code = main(["compare", str(tmp_path / "a"), str(tmp_path / "b")])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_threshold_flag(self, tmp_path):
        _write_run(tmp_path / "a", BASE, 0.010)
        _write_run(tmp_path / "b", [v * 1.2 for v in BASE], 0.012)
        assert main([
            "compare", str(tmp_path / "a"), str(tmp_path / "b"),
            "--threshold", "0.5",
        ]) == 0


def _bench_text(scenario_names, events=1000):
    import json

    return json.dumps({
        "schema": "repro-bench/1",
        "scenarios": {
            name: {
                "sim_events": events,
                "wall_seconds": 0.5,
                "events_per_wall_second": events / 0.5,
                "profile": {"events": {"transport": events // 2}},
            }
            for name in scenario_names
        },
    })


class TestSymmetricDifference:
    """Two snapshots over disjoint grids must fail in BOTH directions —
    never silently compare the (possibly empty) intersection."""

    def test_disjoint_bench_grids_fail_both_ways(self, tmp_path):
        (tmp_path / "base.json").write_text(_bench_text(["figure4", "hops"]))
        (tmp_path / "cand.json").write_text(_bench_text(["hops", "overload"]))
        report = compare_runs(tmp_path / "base.json", tmp_path / "cand.json")
        assert not report.ok
        assert any("figure4" in name for name in report.missing)
        assert any("overload" in name for name in report.extras)
        # The shared scenario still got compared.
        assert report.compared > 0

    def test_candidate_only_stat_is_extra_not_silent(self, tmp_path):
        registry = MetricsRegistry()
        registry.histogram("latency_seconds", destination="fe").record(0.01)
        (tmp_path / "base.json").write_text(snapshot_json(registry.snapshot()))
        registry.histogram("latency_seconds", destination="ratings").record(0.01)
        (tmp_path / "cand.json").write_text(snapshot_json(registry.snapshot()))
        report = compare_runs(tmp_path / "base.json", tmp_path / "cand.json")
        assert not report.ok
        assert any("ratings" in name for name in report.extras)
        assert "EXTRA" in report.text()

    def test_candidate_only_file_is_extra(self, tmp_path):
        _write_run(tmp_path / "a", BASE, 0.010)
        _write_run(tmp_path / "b", BASE, 0.010)
        (tmp_path / "b" / "bench.json").write_text(_bench_text(["figure4"]))
        report = compare_runs(tmp_path / "a", tmp_path / "b")
        assert not report.ok
        assert "bench.json" in report.extras

    def test_unreadable_candidate_extra_ignored(self, tmp_path):
        # A candidate-side file no reader understands is skipped, same
        # as it would be on the baseline side.
        _write_run(tmp_path / "a", BASE, 0.010)
        _write_run(tmp_path / "b", BASE, 0.010)
        (tmp_path / "b" / "notes.json").write_text('{"data": []}')
        assert compare_runs(tmp_path / "a", tmp_path / "b").ok

    def test_wall_stats_do_not_count_as_extras(self, tmp_path):
        # Identical deterministic stats; only host-dependent wall stats
        # differ in coverage: still clean without include_wall.
        (tmp_path / "base.json").write_text(_bench_text(["figure4"]))
        (tmp_path / "cand.json").write_text(_bench_text(["figure4"]))
        report = compare_runs(tmp_path / "base.json", tmp_path / "cand.json")
        assert report.ok
        assert not report.extras

    def test_extra_count_in_text(self, tmp_path):
        (tmp_path / "base.json").write_text(_bench_text(["a"]))
        (tmp_path / "cand.json").write_text(_bench_text(["a", "b"]))
        report = compare_runs(tmp_path / "base.json", tmp_path / "cand.json")
        assert "2 extra" in report.text()  # sim_events + events[transport]


def _edges_text(edges):
    """A GraphCollector.edges_csv snapshot: {(src, dst, cls): p99_s}."""
    from repro.obs.graph import EDGES_CSV_HEADER

    lines = [EDGES_CSV_HEADER]
    for (src, dst, cls) in sorted(edges):
        p99 = edges[(src, dst, cls)]
        lines.append(
            f"{src},{dst},{cls},100,0,0.000000,25.000000,"
            f"{p99 * 0.8:.9f},{p99:.9f},"
            "0.000100000,0.000000000,0.000050000,0.001000000"
        )
    return "\n".join(lines) + "\n"


HEALTHY = {
    ("ingress-gateway", "frontend", "LS"): 0.010,
    ("frontend", "backend", "LS"): 0.008,
}


class TestGraphEdgeSnapshots:
    """Graph edge CSVs diff per-edge: p99 drift plus EXTRA/MISSING edges."""

    def test_identical_snapshots_pass(self, tmp_path):
        (tmp_path / "base.csv").write_text(_edges_text(HEALTHY))
        (tmp_path / "cand.csv").write_text(_edges_text(HEALTHY))
        report = compare_runs(tmp_path / "base.csv", tmp_path / "cand.csv")
        assert report.ok
        assert report.compared == 2

    def test_p99_drift_beyond_threshold_regresses(self, tmp_path):
        worse = dict(HEALTHY)
        worse[("frontend", "backend", "LS")] = 0.012  # +50 %
        (tmp_path / "base.csv").write_text(_edges_text(HEALTHY))
        (tmp_path / "cand.csv").write_text(_edges_text(worse))
        report = compare_runs(tmp_path / "base.csv", tmp_path / "cand.csv")
        assert not report.ok
        (delta,) = report.regressions
        assert (delta.metric, delta.stat) == ("frontend->backend/LS", "p99")
        assert "ms" in delta.line()

    def test_drift_under_50us_floor_never_regresses(self, tmp_path):
        # 40 % relative but only 40 us absolute: windowed-quantile
        # jitter on a sparse edge, not a regression.
        tiny = {("frontend", "backend", "LS"): 0.0001}
        worse = {("frontend", "backend", "LS"): 0.00014}
        (tmp_path / "base.csv").write_text(_edges_text(tiny))
        (tmp_path / "cand.csv").write_text(_edges_text(worse))
        assert compare_runs(tmp_path / "base.csv", tmp_path / "cand.csv").ok

    def test_missing_edge_fails(self, tmp_path):
        gone = {k: v for k, v in HEALTHY.items() if k[1] != "backend"}
        (tmp_path / "base.csv").write_text(_edges_text(HEALTHY))
        (tmp_path / "cand.csv").write_text(_edges_text(gone))
        report = compare_runs(tmp_path / "base.csv", tmp_path / "cand.csv")
        assert not report.ok
        assert any("frontend->backend/LS" in name for name in report.missing)

    def test_extra_edge_fails(self, tmp_path):
        grown = dict(HEALTHY)
        grown[("backend", "db", "LS")] = 0.002
        (tmp_path / "base.csv").write_text(_edges_text(HEALTHY))
        (tmp_path / "cand.csv").write_text(_edges_text(grown))
        report = compare_runs(tmp_path / "base.csv", tmp_path / "cand.csv")
        assert not report.ok
        assert any("backend->db/LS" in name for name in report.extras)

    def test_real_collector_snapshot_round_trips(self, tmp_path):
        # The reader accepts what GraphCollector.edges_csv actually
        # writes, not just the hand-built fixture.
        from repro.mesh.telemetry import RequestRecord
        from repro.obs import GraphCollector

        graph = GraphCollector(window=4.0)
        for i in range(50):
            graph.observe_request(
                RequestRecord(
                    time=0.05 * i, source="frontend", destination="backend",
                    latency=0.010, status=200, request_class="LS",
                )
            )
        (tmp_path / "edges.csv").write_text(graph.edges_csv(2.5))
        (tmp_path / "cand.csv").write_text(graph.edges_csv(2.5))
        report = compare_runs(tmp_path / "edges.csv", tmp_path / "cand.csv")
        assert report.ok
        assert report.compared == 1
