"""The USE resource plane: trackers, wiring hooks, exports, analyzer."""

import pytest

from helpers import MeshTestbed, echo_handler

from repro.http import HttpRequest
from repro.mesh import MeshConfig, RetryPolicy
from repro.obs import compare_runs
from repro.obs.metrics import MetricsRegistry
from repro.obs.resources import (
    RESOURCES_CSV_HEADER,
    CapacityEstimate,
    ResourceCollector,
    TrackedResource,
    fill_registry_from_rows,
    fit_capacity,
    rank_bottlenecks,
    rows_csv,
    rows_prometheus,
)
from repro.overload import AdmissionGate, LevelingQueue, OverloadConfig, RetryBudget
from repro.sim import Resource, Simulator


class TestTrackedResource:
    def test_sample_scales_by_capacity(self):
        tracked = TrackedResource("cpu:x", "worker-pool", "node-0", capacity=4)
        tracked.sample(0.0, in_use=2, queued=3)
        assert tracked.util.last == pytest.approx(0.5)
        assert tracked.sat.last == 3.0

    def test_zero_capacity_uses_raw_scale(self):
        tracked = TrackedResource("qdisc:x", "qdisc", "node-0", capacity=0.0)
        tracked.sample(0.0, in_use=7, queued=0)
        assert tracked.util.last == 7.0  # scale 1.0, not a ZeroDivisionError

    def test_busy_pool_tracking(self):
        tracked = TrackedResource("pool", "concurrency", "n", capacity=2)
        tracked.busy_acquire(0.0)
        tracked.busy_acquire(1.0, queued=5)
        assert tracked.util.last == pytest.approx(1.0)
        assert tracked.sat.last == 5.0
        tracked.busy_release(2.0)
        assert tracked.util.last == pytest.approx(0.5)

    def test_errors_accumulate(self):
        tracked = TrackedResource("gate", "admission-gate", "n", capacity=1)
        tracked.error(0.0)
        tracked.error(0.1, amount=2.0)
        assert tracked.errors_total == 3.0
        assert tracked.errors.total(0.1) == 3.0

    def test_row_is_plain_primitives(self):
        tracked = TrackedResource("cpu:x", "worker-pool", "node-0", capacity=4)
        tracked.sample(0.0, in_use=4, queued=1)
        row = tracked.row(2.0)
        assert row["resource"] == "cpu:x"
        assert row["kind"] == "worker-pool"
        assert row["node"] == "node-0"
        assert row["capacity"] == 4.0
        assert row["utilization"] == pytest.approx(1.0)
        assert row["sat_max"] == 1.0
        assert all(
            isinstance(v, (str, float, int)) for v in row.values()
        )


class TestCollectorWiring:
    def test_track_is_get_or_create(self):
        collector = ResourceCollector()
        first = collector.track("cpu:a", "worker-pool", "n", 2.0)
        second = collector.track("cpu:a", "worker-pool", "n", 2.0)
        assert first is second
        assert len(collector) == 1
        assert collector.tracker("cpu:a") is first

    def test_invalid_poll_interval(self):
        with pytest.raises(ValueError):
            ResourceCollector(poll_interval=0.0)

    def test_watch_counted_tracks_transitions(self):
        sim = Simulator()
        cpu = Resource(sim, capacity=2)
        collector = ResourceCollector(window=4.0)
        tracked = collector.watch_counted("cpu:p", "worker-pool", "n", cpu)

        def worker():
            grant = yield cpu.acquire()
            yield sim.timeout(1.0)
            cpu.release(grant)

        sim.process(worker())
        sim.run(until=2.0)
        # One of two units busy for 1 s out of 2 -> mean 0.25, max 0.5.
        assert tracked.util.mean(2.0) == pytest.approx(0.25)
        assert tracked.util.maximum(2.0) == pytest.approx(0.5)

    def test_watch_counted_sees_queueing_saturation(self):
        sim = Simulator()
        cpu = Resource(sim, capacity=1)
        collector = ResourceCollector(window=4.0)
        tracked = collector.watch_counted("cpu:p", "worker-pool", "n", cpu)

        def worker():
            grant = yield cpu.acquire()
            yield sim.timeout(1.0)
            cpu.release(grant)

        for _ in range(3):
            sim.process(worker())
        sim.run(until=0.5)
        assert tracked.util.last == 1.0
        assert tracked.sat.last == 2.0  # two acquires waiting

    def test_watch_leveling_counts_rejects_and_displacements(self):
        sim = Simulator()
        queue = LevelingQueue(sim, depth=2, key=lambda item: item)
        collector = ResourceCollector(window=4.0)
        tracked = collector.watch_leveling("leveling:p", "n", queue)
        assert queue.offer(1)[0] == "queued"
        assert queue.offer(1)[0] == "queued"
        # Same priority, full buffer: the newcomer is rejected.
        outcome, _ = queue.offer(1)
        assert outcome == "rejected"
        assert tracked.errors_total == 1.0
        # A better (lower-key) newcomer displaces the worst entry.
        outcome, displaced = queue.offer(0)
        assert outcome == "queued" and displaced is not None
        assert tracked.errors_total == 2.0
        assert tracked.sat.last == 2.0

    def test_watch_gate_samples_dropping_state(self):
        sim = Simulator()
        gate = AdmissionGate()
        collector = ResourceCollector(window=4.0)
        tracked = collector.watch_gate("gate:ingress", "n", gate, sim)
        assert gate.admit("default", now=0.1)
        assert tracked.errors_total == 0.0
        assert tracked.util.last == 0.0  # not dropping
        # Saturate the gate: sustained latency far above target.
        for i in range(200):
            gate.observe(0.5 + i * 0.01, 10.0)
        for i in range(50):
            gate.admit("default", now=3.0 + i * 0.05)
        assert gate.shed.get("default", 0) > 0
        assert tracked.errors_total > 0
        # The dropping epoch is visible in the windowed max even after
        # the gate recovers (its latency evidence ages out).
        assert tracked.util.maximum(5.5) == 1.0

    def test_watch_budget_tracks_denials(self):
        sim = Simulator()
        budget = RetryBudget(ratio=0.0, min_retries=1)
        collector = ResourceCollector(window=4.0)
        tracked = collector.watch_budget("retry-budget:p", "n", budget, sim)
        budget.request_started()
        assert budget.try_acquire()
        assert tracked.util.last == pytest.approx(1.0)  # 1 of limit 1
        assert not budget.try_acquire()
        assert tracked.errors_total == 1.0
        budget.release()
        budget.request_finished()
        assert tracked.sat.last == 0.0


class TestPolledInterfaces:
    def _network(self, sim):
        from repro.net import Network

        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        net.connect("a", "b", rate_bps=8e6)
        net.bind("10.0.0.1", "a")
        net.bind("10.0.0.2", "b", handler=lambda p: None)
        net.build_routes()
        return net

    def test_fluid_bytes_drive_link_utilization(self):
        sim = Simulator()
        net = self._network(sim)
        collector = ResourceCollector(window=4.0, poll_interval=0.1)
        collector.install(sim, network=net)
        iface = net.interface_between("a", "b")
        # 50 kB fluid transfer = 0.05 s of busy time on a 1 MB/s link.
        iface.fluid_register(50_000)
        sim.run(until=0.35)
        tracked = collector.tracker(f"link:{iface.name}")
        assert tracked.util.maximum(sim.now) == pytest.approx(0.5)
        assert collector.tracker(f"qdisc:{iface.name}").errors_total == 0.0

    def test_no_sampler_process_without_install(self):
        sim = Simulator()
        self._network(sim)
        ResourceCollector()  # constructed but never installed
        sim.run(until=1.0)
        assert sim.processed_events == 0


class TestScenarioInstall:
    def _run_testbed(self, collector=None):
        config = MeshConfig(
            retry=RetryPolicy(max_attempts=1),
            overload=OverloadConfig(gate=None, concurrency=2, queue_depth=8),
        )
        testbed = MeshTestbed(mesh_config=config, seed=3)

        def compute_handler(ctx, request):
            yield from ctx.compute(0.005)  # hold a CPU worker
            return request.reply(body_size=200)

        testbed.add_service("svc", compute_handler)
        gateway = testbed.finish("svc")
        if collector is not None:
            collector.install(
                testbed.sim,
                mesh=testbed.mesh,
                cluster=testbed.cluster,
                gateway=gateway,
            )
        events = []

        def drive():
            for _ in range(20):
                events.append(gateway.submit(HttpRequest(service="")))
                yield testbed.sim.timeout(0.02)

        testbed.sim.process(drive())
        testbed.sim.run(until=2.0)
        statuses = tuple(e.value.status for e in events)
        return testbed, statuses

    def test_install_registers_every_layer(self):
        collector = ResourceCollector(window=2.0)
        testbed, statuses = self._run_testbed(collector)
        assert collector.installed
        assert testbed.mesh.telemetry.resources is collector
        names = [row["resource"] for row in collector.snapshot(testbed.sim.now)]
        assert names == sorted(names)
        assert any(name.startswith("cpu:svc-v1") for name in names)
        assert any(name.startswith("sidecar-pool:svc-v1") for name in names)
        assert any(name.startswith("leveling:svc-v1") for name in names)
        assert any(name.startswith("retry-budget:svc-v1") for name in names)
        assert any(name.startswith("link:") for name in names)
        assert any(name.startswith("qdisc:") for name in names)
        pool = collector.tracker(
            next(n for n in names if n.startswith("cpu:svc-v1"))
        )
        assert pool.util.mean(testbed.sim.now) > 0.0

    def test_collector_does_not_perturb_the_run(self):
        _testbed, with_collector = self._run_testbed(ResourceCollector())
        _testbed, without = self._run_testbed(None)
        assert with_collector == without

    def test_text_and_exports(self, tmp_path):
        collector = ResourceCollector(window=2.0)
        testbed, _ = self._run_testbed(collector)
        now = testbed.sim.now
        text = collector.text(now)
        assert text.splitlines()[0].startswith("resource")
        csv = collector.csv(now)
        assert csv.splitlines()[0] == RESOURCES_CSV_HEADER
        prom = collector.prometheus(now)
        assert "repro_resource_utilization" in prom
        registry = MetricsRegistry()
        collector.fill_registry(registry, now)
        snapshot = registry.snapshot()
        assert any(
            key.startswith("repro_resource_errors_total")
            for key in snapshot["counters"]
        )
        assert any(
            key.startswith("repro_resource_utilization")
            for key in snapshot["gauges"]
        )

    def test_compare_reads_resource_csv(self, tmp_path):
        rows = [
            {
                "resource": "cpu:svc-v1-1", "kind": "worker-pool",
                "node": "node-0", "capacity": 1.0, "utilization": 0.40,
                "util_max": 0.9, "saturation": 0.5, "sat_max": 2.0,
                "errors": 0.0,
            },
        ]
        drifted = [dict(rows[0], utilization=0.80)]
        extra = dict(rows[0], resource="cpu:svc-v2-1")
        before = tmp_path / "before"
        after = tmp_path / "after"
        before.mkdir()
        after.mkdir()
        (before / "resources.csv").write_text(rows_csv(rows))
        (after / "resources.csv").write_text(rows_csv(drifted + [extra]))
        report = compare_runs(before, after)
        assert any(d.metric == "cpu:svc-v1-1" for d in report.regressions)
        assert any("cpu:svc-v2-1" in key for key in report.extras)


class TestCapacityAnalyzer:
    def test_fit_capacity_linear(self):
        # util = 0.02 * rps -> knee at 50 rps.
        points = [(10.0, 0.2), (20.0, 0.4), (30.0, 0.6)]
        assert fit_capacity(points) == pytest.approx(50.0)

    def test_fit_excludes_clipped_points(self):
        # The 1.0-clipped past-knee point would flatten the slope.
        points = [(10.0, 0.2), (20.0, 0.4), (80.0, 1.0)]
        assert fit_capacity(points) == pytest.approx(50.0)

    def test_fit_falls_back_when_everything_clips(self):
        points = [(10.0, 0.9), (20.0, 1.0)]
        assert fit_capacity(points) < 25.0  # fitted on the clipped points

    def test_idle_resource_predicts_inf(self):
        assert fit_capacity([]) == float("inf")
        assert fit_capacity([(10.0, 0.0), (20.0, 0.0)]) == float("inf")
        assert fit_capacity([(0.0, 0.5)]) == float("inf")

    def test_rank_bottlenecks_orders_by_predicted_capacity(self):
        curves = {
            "link:fast": {
                "kind": "link", "node": "core",
                "points": [(10.0, 0.01), (20.0, 0.02)],
            },
            "cpu:hot": {
                "kind": "worker-pool", "node": "node-0",
                "points": [(10.0, 0.33), (20.0, 0.66)],
            },
        }
        ranked = rank_bottlenecks(curves)
        assert [e.resource for e in ranked] == ["cpu:hot", "link:fast"]
        assert ranked[0].predicted_max_rps == pytest.approx(30.3, rel=0.01)
        assert ranked[0].peak_utilization == pytest.approx(0.66)
        assert ranked[0].headroom == pytest.approx(0.34)

    def test_headroom_floors_at_zero(self):
        estimate = CapacityEstimate("r", "k", "n", 10.0, peak_utilization=1.0)
        assert estimate.headroom == 0.0


class TestRowExports:
    ROWS = [
        {
            "resource": "cpu:a", "kind": "worker-pool", "node": "n0",
            "capacity": 4.0, "utilization": 0.5, "util_max": 1.0,
            "saturation": 2.5, "sat_max": 7.0, "errors": 3.0,
        },
    ]

    def test_rows_csv_format(self):
        lines = rows_csv(self.ROWS).splitlines()
        assert lines[0] == RESOURCES_CSV_HEADER
        assert lines[1] == "cpu:a,worker-pool,n0,4,0.500000,1.000000,2.5000,7.0000,3"

    def test_fill_registry_from_rows(self):
        registry = MetricsRegistry()
        fill_registry_from_rows(registry, self.ROWS)
        fill_registry_from_rows(registry, self.ROWS)  # errors re-inc
        text = rows_prometheus(self.ROWS)
        assert 'resource="cpu:a"' in text
        assert "repro_resource_saturation" in text
        assert "repro_resource_errors_total" in text
