"""The online service-dependency graph: RED windows, layer tallies,
wire exclusivity, and the byte-stable DOT/CSV/Prometheus exports."""

import pytest

from repro.mesh.telemetry import RequestRecord
from repro.obs import GraphCollector, MetricsRegistry, SpanCollector
from repro.obs.attribution import (
    LAYER_PROXY,
    LAYER_QUEUE,
    LAYER_RETRY,
    LAYER_TRANSPORT,
)
from repro.obs.graph import EDGES_CSV_HEADER
from repro.obs.metrics import LogLinearHistogram
from repro.obs.promexport import prometheus_text


def _record(
    time=1.0,
    source="frontend",
    destination="backend",
    latency=0.010,
    status=200,
    request_class="LS",
    server_seconds=None,
    retries=0,
):
    return RequestRecord(
        time=time,
        source=source,
        destination=destination,
        latency=latency,
        status=status,
        request_class=request_class,
        server_seconds=server_seconds,
        retries=retries,
    )


class TestEdgeDiscoveryAndRed:
    def test_edge_discovered_with_red_metrics(self):
        graph = GraphCollector(window=4.0)
        for i in range(10):
            graph.observe_request(_record(time=0.1 * i, latency=0.010))
        graph.observe_request(_record(time=1.0, status=503))
        assert graph.edges() == [("frontend", "backend")]
        (row,) = graph.edge_summaries(1.0)
        assert (row.src, row.dst, row.request_class) == (
            "frontend", "backend", "LS",
        )
        assert row.requests == 11
        assert row.errors == 1
        assert row.error_ratio == pytest.approx(1 / 11)
        assert row.rate == pytest.approx(11 / 4.0)
        assert row.latency.p50 == pytest.approx(0.010, rel=0.01)

    def test_retried_request_is_one_logical_edge_traversal(self):
        # Hedges/retries collapse before the record reaches the graph:
        # however many tries the hop took, the edge saw ONE request.
        graph = GraphCollector(window=4.0)
        graph.observe_request(_record(retries=2))
        (row,) = graph.edge_summaries(1.0)
        assert row.requests == 1

    def test_classes_kept_separate(self):
        graph = GraphCollector(window=4.0)
        graph.observe_request(_record(request_class="LS", latency=0.001))
        graph.observe_request(_record(request_class="LI", latency=0.100))
        rows = graph.edge_summaries(1.0)
        assert [r.request_class for r in rows] == ["LI", "LS"]
        assert rows[0].latency.p99 == pytest.approx(0.100, rel=0.01)
        assert rows[1].latency.p99 == pytest.approx(0.001, rel=0.01)

    def test_red_p99_matches_offline_histogram(self):
        # The windowed quantile must agree with an offline histogram of
        # the same samples within the log-linear bucket-width bound.
        graph = GraphCollector(window=10.0, registry=MetricsRegistry())
        offline = LogLinearHistogram(1e-6, 1e4, 1000)
        for i in range(500):
            latency = 0.001 * (1 + i % 50)
            graph.observe_request(_record(time=0.01 * i, latency=latency))
            offline.record(latency)
        (row,) = graph.edge_summaries(5.0)
        assert row.latency.p99 == pytest.approx(offline.quantile(99.0), rel=0.01)
        # The cumulative Prometheus family saw the same samples.
        (hist,) = graph.registry.histograms_matching("repro_edge_latency_seconds")
        assert hist.count == 500
        assert hist.quantile(99.0) == pytest.approx(offline.quantile(99.0), rel=0.01)


class TestWireAccounting:
    def test_server_seconds_subtracted_from_wire(self):
        graph = GraphCollector(window=4.0)
        graph.observe_request(_record(latency=0.010, server_seconds=0.007))
        edge = graph._edges[("frontend", "backend")]
        assert edge.wire.total(1.0) == pytest.approx(0.003)

    def test_unanswered_request_charges_whole_latency_to_wire(self):
        graph = GraphCollector(window=4.0)
        graph.observe_request(_record(latency=0.010, server_seconds=None))
        edge = graph._edges[("frontend", "backend")]
        assert edge.wire.total(1.0) == pytest.approx(0.010)

    def test_server_time_exceeding_latency_clamps_to_zero(self):
        graph = GraphCollector(window=4.0)
        graph.observe_request(_record(latency=0.010, server_seconds=0.020))
        edge = graph._edges[("frontend", "backend")]
        assert edge.wire.total(1.0) == 0.0

    def test_transport_is_residual_after_explicit_layers(self):
        graph = GraphCollector(window=4.0)
        graph.observe_request(_record(latency=0.010, server_seconds=0.002))
        graph.observe_layer("frontend", "backend", LAYER_PROXY, 0.001, 1.0)
        graph.observe_layer("frontend", "backend", LAYER_QUEUE, 0.003, 1.0)
        layers = graph._edges[("frontend", "backend")].layer_seconds(1.0)
        # wire = 8 ms, proxy 1 + queue 3 covered -> transport residual 4.
        assert layers[LAYER_TRANSPORT] == pytest.approx(0.004)
        assert layers[LAYER_PROXY] == pytest.approx(0.001)
        assert layers[LAYER_RETRY] == 0.0


class TestFlowsAndNodes:
    def test_queue_wait_charged_to_claimed_flow_edge(self):
        class _Packet:
            flow_id = 7
            enqueued_at = 0.5

        graph = GraphCollector(window=4.0)
        graph.observe_request(_record())
        graph.claim_flow(7, "frontend", "backend")
        graph.observe_queue_wait(_Packet(), 0.9)
        graph.release_flow(7)
        graph.observe_queue_wait(_Packet(), 1.3)  # released: no charge
        layers = graph._edges[("frontend", "backend")].layer_seconds(1.3)
        assert layers[LAYER_QUEUE] == pytest.approx(0.4)

    def test_node_app_seconds_is_per_call(self):
        graph = GraphCollector(window=4.0)
        graph.observe_app("backend", 0.004, 1.0)
        graph.observe_app("backend", 0.008, 1.1)
        assert graph.node_app_seconds(1.1) == {
            "backend": pytest.approx(0.006)
        }

    def test_span_fed_edges_discovered_without_wire_events(self):
        # Ambient node-local delivery produces zero wire events; the
        # sampled client span still reveals the edge.
        collector = SpanCollector()
        collector.edge_counts[("frontend", "local-cache")] = 3
        graph = GraphCollector(window=4.0)
        graph.ingest_spans(collector)
        graph.ingest_spans(collector)
        assert graph.edges() == [("frontend", "local-cache")]
        assert graph.span_edges[("frontend", "local-cache")] == 6
        # Discovery only: no RED rows, but the DOT render includes it.
        assert graph.edge_summaries(1.0) == []
        assert '"frontend" -> "local-cache"' in graph.dot()


class TestBaseline:
    def test_freeze_captures_reference_levels(self):
        graph = GraphCollector(window=4.0)
        for i in range(10):
            graph.observe_request(
                _record(time=0.1 * i, latency=0.010, server_seconds=0.008)
            )
        graph.observe_request(_record(time=1.0, status=503))
        graph.observe_app("backend", 0.004, 1.0)
        baseline = graph.freeze_baseline(1.0)
        assert graph.baseline is baseline
        key = ("frontend", "backend")
        assert baseline.edge_error_ratio[(*key, "LS")] == pytest.approx(1 / 11)
        assert baseline.edge_p99[(*key, "LS")] == pytest.approx(0.010, rel=0.01)
        assert baseline.edge_layers[key][LAYER_TRANSPORT] > 0.0
        assert baseline.node_app["backend"] == pytest.approx(0.004)


class TestExports:
    def _populated(self):
        graph = GraphCollector(window=4.0, registry=MetricsRegistry())
        for i in range(20):
            graph.observe_request(
                _record(
                    time=0.1 * i,
                    source="ingress-gateway",
                    destination="frontend",
                    latency=0.010 + 0.001 * (i % 3),
                )
            )
            graph.observe_request(
                _record(time=0.1 * i, latency=0.005, request_class="LI")
            )
        graph.observe_request(_record(time=1.9, status=503))
        graph.observe_layer("frontend", "backend", LAYER_RETRY, 0.002, 1.9)
        return graph

    def test_edges_csv_shape_and_byte_stability(self):
        graph = self._populated()
        csv = graph.edges_csv(2.0)
        lines = csv.splitlines()
        assert lines[0] == EDGES_CSV_HEADER
        assert len(lines) == 1 + 3  # gateway->frontend/LS + fe->be LI,LS
        assert csv.endswith("\n")
        assert lines[1].startswith("frontend,backend,LI,")
        # Double export: byte-identical (the exporters' contract).
        assert graph.edges_csv(2.0) == csv

    def test_dot_shape_and_byte_stability(self):
        graph = self._populated()
        dot = graph.dot(2.0)
        assert dot.startswith("digraph services {")
        assert dot.endswith("}\n")
        assert '"ingress-gateway" [shape=box];' in dot
        assert '"frontend" [shape=ellipse];' in dot
        assert "rps / p99" in dot
        assert graph.dot(2.0) == dot
        # Without a time, edges render unlabeled.
        assert '"frontend" -> "backend";' in graph.dot()

    def test_prometheus_families_byte_stable(self):
        graph = self._populated()
        snapshot = graph.registry.snapshot()
        text = prometheus_text(snapshot)
        assert "# TYPE repro_edge_requests_total counter" in text
        assert "# TYPE repro_edge_errors_total counter" in text
        assert "# TYPE repro_edge_latency_seconds histogram" in text
        assert (
            'repro_edge_requests_total{class="LI",dst="backend",src="frontend"} 20'
            in text
        )
        # Double export from a fresh snapshot: byte-identical.
        assert prometheus_text(graph.registry.snapshot()) == text


class TestZeroOverheadContract:
    def test_collector_schedules_nothing(self):
        # The collector must be purely passive: no simulator handle at
        # all, so it *cannot* schedule events.
        graph = GraphCollector(window=4.0)
        assert not hasattr(graph, "sim")

    def test_empty_graph_exports_are_well_defined(self):
        graph = GraphCollector(window=4.0)
        assert graph.edges_csv(0.0) == EDGES_CSV_HEADER + "\n"
        assert graph.dot() == 'digraph services {\n  rankdir=LR;\n}\n'
        assert graph.services() == []
        assert graph.node_app_seconds(0.0) == {}
