"""Exporters: snapshot CSV/JSON, waterfalls, and the HistogramRecorder."""

import json

import pytest

from repro.obs import (
    HistogramRecorder,
    LAYER_APP,
    LAYER_QUEUE,
    LayerAttributor,
    MetricsRegistry,
    csv_escape,
    snapshot_csv,
    snapshot_json,
    waterfall_csv,
    waterfall_text,
)
from repro.obs.export import request_waterfall_text


def _report():
    attributor = LayerAttributor()
    attributor.start_request("r1", "LS", 0.0)
    attributor.record("r1", LAYER_APP, 0.0, 0.004)
    attributor.record("r1", LAYER_QUEUE, 0.004, 0.006)
    attributor.finish_request("r1", 0.010)
    return attributor


class TestSnapshots:
    def test_json_is_canonical(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        text = snapshot_json(registry.snapshot())
        assert json.loads(text)["counters"] == {"a": 2, "b": 1}
        assert text == snapshot_json(registry.snapshot())

    def test_csv_rows(self):
        registry = MetricsRegistry()
        registry.counter("req", dst="x").inc(3)
        registry.gauge("depth").set(4)
        registry.histogram("lat").record(0.01)
        lines = snapshot_csv(registry.snapshot()).splitlines()
        assert lines[0] == "kind,metric,field,value"
        assert "counter,req{dst=x},value,3" in lines
        assert "gauge,depth,max,4" in lines
        assert "histogram,lat,count,1" in lines


class TestWaterfalls:
    def test_class_waterfall_shape(self):
        text = waterfall_text(_report().class_report(), title="demo")
        assert text.startswith("demo\nlegend: A=app")
        (bar_line,) = [l for l in text.splitlines() if l.startswith("LS")]
        # 40% app, 20% queue, 40% transport residual of the 10 ms request.
        assert "A" in bar_line and "Q" in bar_line and "T" in bar_line
        assert "R" not in bar_line.split("|")[1]
        assert "10.00 ms" in bar_line and "(n=1)" in bar_line

    def test_request_waterfall_lists_segments(self):
        attributor = _report()
        text = request_waterfall_text(attributor.exemplar("LS"))
        assert text.startswith("request r1 [LS] 10.00 ms")
        assert "app" in text and "queue" in text and "transport" in text
        assert "0.000 -     4.000 ms" in text

    def test_waterfall_csv_sums_to_e2e(self):
        csv = waterfall_csv({"on": _report().class_report()})
        rows = [line.split(",") for line in csv.splitlines()[1:]]
        e2e = next(float(r[3]) for r in rows if r[2] == "e2e")
        layer_sum = sum(float(r[3]) for r in rows if r[2] != "e2e")
        share_sum = sum(float(r[4]) for r in rows if r[2] != "e2e")
        assert layer_sum == pytest.approx(e2e)
        assert share_sum == pytest.approx(1.0)

    def test_waterfall_csv_config_order_sorted(self):
        report = _report().class_report()
        csv = waterfall_csv({"on": report, "off": report})
        tags = [line.split(",")[0] for line in csv.splitlines()[1:]]
        assert tags == sorted(tags)


class TestCsvEscape:
    def test_plain_text_passes_through(self):
        assert csv_escape("plain") == "plain"
        assert csv_escape(42) == "42"

    def test_comma_is_quoted(self):
        assert csv_escape("a,b") == '"a,b"'

    def test_quotes_are_doubled(self):
        assert csv_escape('say "hi"') == '"say ""hi"""'

    def test_newlines_are_quoted(self):
        assert csv_escape("a\nb") == '"a\nb"'
        assert csv_escape("a\rb") == '"a\rb"'

    def test_label_values_survive_snapshot_csv(self):
        registry = MetricsRegistry()
        registry.counter("req", route='GET "/a,b"').inc()
        lines = snapshot_csv(registry.snapshot()).splitlines()
        (row,) = [l for l in lines if l.startswith("counter")]
        # The quoted field parses back to the original key.
        import csv as csv_module
        import io

        ((_, metric, _, _),) = csv_module.reader(io.StringIO(row))
        assert metric == 'req{route=GET "/a,b"}'

    def test_waterfall_csv_escapes_tag_and_class(self):
        attributor = LayerAttributor()
        attributor.start_request("r1", 'LS,"batch"', 0.0)
        attributor.record("r1", LAYER_APP, 0.0, 0.004)
        attributor.finish_request("r1", 0.010)
        text = waterfall_csv({"off,on": attributor.class_report()})
        import csv as csv_module
        import io

        rows = list(csv_module.reader(io.StringIO(text)))
        assert rows[1][0] == "off,on"
        assert rows[1][1] == 'LS,"batch"'


class TestExporterContract:
    """Sorted keys + exactly one trailing newline, byte-stable twice."""

    def _snapshot(self):
        registry = MetricsRegistry()
        registry.counter("b", x="1").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").record(0.003)
        return registry.snapshot()

    def test_exporting_twice_is_byte_identical(self):
        snapshot = self._snapshot()
        report = _report().class_report()
        for exporter, data in (
            (snapshot_json, snapshot),
            (snapshot_csv, snapshot),
            (waterfall_csv, {"off": report, "on": report}),
        ):
            first, second = exporter(data), exporter(data)
            assert first == second
            assert first.endswith("\n") and not first.endswith("\n\n")

    def test_snapshot_json_sorts_keys(self):
        text = snapshot_json(self._snapshot())
        counters = text.index('"counters"')
        histograms = text.index('"histograms"')
        assert counters < histograms


class TestHistogramRecorder:
    def test_latencyrecorder_compatible_summary(self):
        recorder = HistogramRecorder(window=(1.0, 5.0))
        recorder.record("w", 0.5, 0.010, 200)  # warmup: counted, not summarized
        recorder.record("w", 2.0, 0.020, 200)
        recorder.record("w", 3.0, 0.040, 200)
        recorder.record("w", 4.0, 0.100, 500)  # error: never summarized
        summary = recorder.summary("w")
        assert summary.count == 2
        assert summary.mean == pytest.approx(0.030, rel=0.01)
        assert len(recorder) == 4
        assert recorder.error_rate("w") == pytest.approx(0.25)

    def test_mismatched_window_query_rejected(self):
        recorder = HistogramRecorder(window=(1.0, 5.0))
        with pytest.raises(ValueError):
            recorder.summary("w", window=(0.0, 9.0))
        # Re-querying the constructed window is fine.
        assert recorder.summary("w", window=(1.0, 5.0)).count == 0
