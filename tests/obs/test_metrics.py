"""Unit tests for the repro.obs metrics registry."""

import math

import pytest

from repro.obs import (
    Counter,
    Gauge,
    LogLinearHistogram,
    MetricsRegistry,
    merge_snapshots,
    snapshot_digest,
    summary_from_histograms,
)
from repro.obs.metrics import parse_metric_key


class TestCounterGauge:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_tracks_max(self):
        gauge = Gauge()
        gauge.set(5)
        gauge.inc(3)
        gauge.dec(6)
        assert gauge.value == 2
        assert gauge.maximum == 8


class TestHistogram:
    def test_basic_stats(self):
        hist = LogLinearHistogram()
        for value in (0.001, 0.002, 0.003, 0.004):
            hist.record(value)
        assert hist.count == 4
        assert hist.mean == pytest.approx(0.0025)
        assert hist.minimum == 0.001
        assert hist.maximum == 0.004

    def test_empty_quantile_and_summary(self):
        hist = LogLinearHistogram()
        assert hist.quantile(50) == 0.0
        assert hist.summary().count == 0

    def test_quantile_relative_error_bound(self):
        bins = 90
        hist = LogLinearHistogram(bins_per_decade=bins)
        values = [0.0001 * (1.07**i) for i in range(200)]
        for value in values:
            hist.record(value)
        values.sort()
        for q in (10, 50, 90, 99):
            true = values[max(0, math.ceil(q / 100 * len(values)) - 1)]
            estimate = hist.quantile(q)
            assert abs(estimate - true) / true <= 9.0 / bins + 1e-9

    def test_quantile_clamped_to_observed_range(self):
        hist = LogLinearHistogram()
        hist.record(0.005)
        assert hist.quantile(0) == 0.005
        assert hist.quantile(100) == 0.005

    def test_underflow_and_overflow_buckets(self):
        hist = LogLinearHistogram(lowest=1e-6, highest=1e4)
        hist.record(0.0)
        hist.record(1e9)
        assert hist.count == 2
        assert hist.quantile(1) <= 1e-6
        # The overflow bucket reports the histogram bound; the true
        # extreme survives in .maximum.
        assert hist.quantile(99) == pytest.approx(1e4)
        assert hist.maximum == 1e9

    def test_merge_exact_on_counts(self):
        a = LogLinearHistogram()
        b = LogLinearHistogram()
        both = LogLinearHistogram()
        values = [0.001 * (1 + i) for i in range(100)]
        for i, value in enumerate(values):
            (a if i % 2 else b).record(value)
            both.record(value)
        a.merge(b)
        assert a.counts == both.counts
        assert a.count == both.count
        for q in (50, 90, 99):
            assert a.quantile(q) == both.quantile(q)

    def test_merge_rejects_incompatible_bounds(self):
        with pytest.raises(ValueError):
            LogLinearHistogram(bins_per_decade=90).merge(
                LogLinearHistogram(bins_per_decade=45)
            )

    def test_dict_roundtrip(self):
        hist = LogLinearHistogram()
        for value in (0.01, 0.02, 0.5):
            hist.record(value)
        clone = LogLinearHistogram.from_dict(hist.to_dict())
        assert clone.counts == hist.counts
        assert clone.summary() == hist.summary()

    def test_summary_from_histograms_empty(self):
        assert summary_from_histograms([]).count == 0


class TestRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a", x="1") is registry.counter("a", x="1")
        assert registry.counter("a", x="1") is not registry.counter("a", x="2")

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("m", a="1", b="2").inc()
        assert registry.counter("m", b="2", a="1").value == 1

    def test_counter_total_subset_match(self):
        registry = MetricsRegistry()
        registry.counter("req", src="a", dst="x").inc(2)
        registry.counter("req", src="b", dst="x").inc(3)
        registry.counter("req", src="b", dst="y").inc(5)
        assert registry.counter_total("req") == 10
        assert registry.counter_total("req", dst="x") == 5
        assert registry.counter_total("req", src="b", dst="y") == 5
        assert registry.counter_total("other") == 0

    def test_parse_metric_key_roundtrip(self):
        assert parse_metric_key("plain") == ("plain", {})
        assert parse_metric_key("m{a=1,b=x}") == ("m", {"a": "1", "b": "x"})

    def test_snapshot_sorted_and_digestible(self):
        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a").inc()
        registry.gauge("g").set(4)
        registry.histogram("h").record(0.01)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "z"]
        assert snapshot_digest(snapshot) == snapshot_digest(registry.snapshot())

    def test_from_snapshot_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("c", k="v").inc(7)
        registry.gauge("g").set(2)
        registry.histogram("h").record(0.25)
        restored = MetricsRegistry.from_snapshot(registry.snapshot())
        assert snapshot_digest(restored.snapshot()) == snapshot_digest(
            registry.snapshot()
        )

    def test_merge_snapshots_reduces_shards(self):
        shard1 = MetricsRegistry()
        shard2 = MetricsRegistry()
        shard1.counter("req").inc(2)
        shard2.counter("req").inc(3)
        shard1.gauge("depth").set(5)
        shard2.gauge("depth").set(9)
        shard1.histogram("lat").record(0.01)
        shard2.histogram("lat").record(0.04)
        merged = merge_snapshots(shard1.snapshot(), shard2.snapshot())
        assert merged["counters"]["req"] == 5
        assert merged["gauges"]["depth"]["max"] == 9
        restored = MetricsRegistry.from_snapshot(merged)
        assert restored.histograms_matching("lat")[0].count == 2

    def test_merge_snapshots_order_independent_digest(self):
        shard1 = MetricsRegistry()
        shard2 = MetricsRegistry()
        shard1.counter("req").inc(2)
        shard2.counter("req").inc(3)
        shard1.histogram("lat").record(0.01)
        shard2.histogram("lat").record(0.04)
        ab = merge_snapshots(shard1.snapshot(), shard2.snapshot())
        ba = merge_snapshots(shard2.snapshot(), shard1.snapshot())
        assert snapshot_digest(ab) == snapshot_digest(ba)
