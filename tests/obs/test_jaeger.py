"""Jaeger JSON export: span tree preserved through json.loads."""

import json

from repro.mesh.tracing import Span, Trace
from repro.obs import jaeger_json, jaeger_trace_dict


def _trace(trace_id="t1"):
    trace = Trace(trace_id)
    trace.spans.append(
        Span(trace_id, "s1", None, "gateway", "ingress", 0.000, 0.020,
             tags={"status": 200})
    )
    trace.spans.append(
        Span(trace_id, "s2", "s1", "frontend", "GET /", 0.002, 0.018)
    )
    trace.spans.append(
        Span(trace_id, "s3", "s2", "backend", "GET /db", 0.005, 0.012)
    )
    return trace


class TestTraceDict:
    def test_span_tree_survives_json_loads(self):
        data = json.loads(jaeger_json([_trace()]))
        (trace,) = data["data"]
        spans = {span["spanID"]: span for span in trace["spans"]}
        assert set(spans) == {"s1", "s2", "s3"}
        assert spans["s1"]["references"] == []
        (ref2,) = spans["s2"]["references"]
        assert ref2 == {"refType": "CHILD_OF", "traceID": "t1", "spanID": "s1"}
        (ref3,) = spans["s3"]["references"]
        assert ref3["spanID"] == "s2"

    def test_times_become_microseconds(self):
        trace = jaeger_trace_dict(_trace())
        root = next(s for s in trace["spans"] if s["spanID"] == "s1")
        assert root["startTime"] == 0
        assert root["duration"] == 20_000

    def test_processes_map_services(self):
        trace = jaeger_trace_dict(_trace())
        names = {
            p["serviceName"] for p in trace["processes"].values()
        }
        assert names == {"gateway", "frontend", "backend"}
        for span in trace["spans"]:
            assert span["processID"] in trace["processes"]

    def test_tags_are_string_typed(self):
        trace = jaeger_trace_dict(_trace())
        root = next(s for s in trace["spans"] if s["spanID"] == "s1")
        assert root["tags"] == [
            {"key": "status", "type": "string", "value": "200"}
        ]


class TestDeterminism:
    def test_byte_identical_and_sorted(self):
        traces = [_trace("t2"), _trace("t1")]
        text = jaeger_json(traces)
        assert text == jaeger_json(list(reversed(traces)))
        assert text.endswith("\n") and not text.endswith("\n\n")
        ids = [t["traceID"] for t in json.loads(text)["data"]]
        assert ids == ["t1", "t2"]

    def test_accepts_tracer_like_object(self):
        class FakeTracer:
            traces = [_trace()]

        assert json.loads(jaeger_json(FakeTracer()))["data"][0]["traceID"] == "t1"

    def test_open_span_gets_zero_duration(self):
        trace = Trace("t9")
        trace.spans.append(Span("t9", "s1", None, "svc", "op", 1.0, None))
        span = jaeger_trace_dict(trace)["spans"][0]
        assert span["duration"] == 0
