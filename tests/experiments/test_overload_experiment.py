"""X-9 harness: grid shape, the degradation verdict, and determinism."""

import pytest

from repro.experiments import OverloadExperiment, OverloadResult, measure_overload
from repro.experiments.overload import (
    BATCH_MULTIPLIER,
    FRONTEND_WORKERS,
    LS_FRACTION,
    MULTIPLIERS,
    ON_OVERLOAD,
)

#: One stressed cell (2x capacity), scaled down for the unit suite.
SHORT = dict(duration=5.0, warmup=1.5, drain=20.0, seed=42, rps=30.0)


def cell_config(mode, multiplier):
    points = {p.label: p for p in OverloadExperiment(**SHORT).points()}
    return points[f"{mode}:x{multiplier:g}"].config


@pytest.fixture(scope="module")
def off_cell():
    return measure_overload(cell_config("off", 2))


@pytest.fixture(scope="module")
def on_cell():
    return measure_overload(cell_config("on", 2))


class TestGrid:
    def test_points_cover_both_modes_at_every_multiplier(self):
        points = {p.label: p for p in OverloadExperiment(**SHORT).points()}
        assert set(points) == {
            f"{mode}:x{m:g}" for mode in ("off", "on") for m in MULTIPLIERS
        }

    def test_rps_is_read_as_capacity(self):
        for point in OverloadExperiment(**SHORT).points():
            multiplier = float(point.label.split("x")[1])
            total = point.config.rps + point.config.li_rps
            assert total == pytest.approx(30.0 * multiplier)
            assert point.config.rps == pytest.approx(
                LS_FRACTION * 30.0 * multiplier
            )

    def test_modes_differ_only_in_posture(self):
        off = cell_config("off", 2)
        on = cell_config("on", 2)
        assert off.mesh.overload is None and not off.cross_layer
        assert on.mesh.overload is ON_OVERLOAD and on.cross_layer
        for config in (off, on):
            frontend = config.elibrary.specs_overrides["frontend"]
            assert frontend["workers"] == FRONTEND_WORKERS
            assert config.elibrary.batch_multiplier == BATCH_MULTIPLIER


class TestStressedCell:
    def test_off_mode_collapses_and_alerts(self, off_cell):
        assert off_cell.ls.p99 > 1.0          # way past the 500 ms SLO
        assert off_cell.counters["alerts_fired"] >= 1
        assert off_cell.counters["gateway_shed"] == 0

    def test_on_mode_sheds_and_protects(self, on_cell):
        assert on_cell.counters["gateway_shed"] > 0
        assert on_cell.counters["alerts_fired"] == 0
        assert on_cell.ls.p99 < 0.5

    def test_on_mode_gate_conservation(self, on_cell):
        totals = on_cell.extra["overload"]["gate_totals"]
        assert totals is not None
        for cls, offered in totals["offered"].items():
            assert offered == totals["admitted"].get(cls, 0) + totals[
                "shed"
            ].get(cls, 0)

    def test_goodput_reported_per_class(self, on_cell):
        overload = on_cell.extra["overload"]
        assert overload["ls_goodput_rps"] > 0
        assert overload["li_goodput_rps"] > 0

    def test_measurement_is_deterministic(self, on_cell):
        again = measure_overload(cell_config("on", 2))
        assert again.counters == on_cell.counters
        assert again.ls.p99 == on_cell.ls.p99
        assert again.li.p99 == on_cell.li.p99
        assert again.extra["overload"] == on_cell.extra["overload"]


def synthetic_result(on_stressed_p99=0.12, off_stressed_p99=3.0):
    result = OverloadResult(capacity_rps=30.0)
    for mode, stressed in (("off", off_stressed_p99), ("on", on_stressed_p99)):
        for multiplier in MULTIPLIERS:
            p99 = 0.08 if multiplier < 1.5 else stressed
            result.rows[(mode, multiplier)] = {
                "ls_p99_s": p99,
                "li_p99_s": p99 * 2,
                "ls_goodput_rps": 6.0,
                "li_goodput_rps": 12.0,
                "shed": 100.0 if mode == "on" else 0.0,
                "rejected": 0.0,
                "retries_denied": 0.0,
                "alerts": 2.0 if mode == "off" and multiplier >= 1.5 else 0.0,
            }
    return result


class TestResult:
    def test_degradation_ratio_is_vs_own_uncongested(self):
        result = synthetic_result()
        assert result.degradation_ratio("off", 2.0) == pytest.approx(37.5)
        assert result.degradation_ratio("on", 2.0) == pytest.approx(1.5)

    def test_graceful_verdict(self):
        assert synthetic_result().graceful
        # On-mode degrading past 2x uncongested breaks the claim...
        assert not synthetic_result(on_stressed_p99=0.5).graceful
        # ...as does the off mode failing to collapse (nothing to save).
        assert not synthetic_result(off_stressed_p99=0.2).graceful

    def test_alerts_accessor_sums(self):
        result = synthetic_result()
        assert result.alerts("off") == 6
        assert result.alerts("off", 2.0) == 2
        assert result.alerts("on") == 0

    def test_csv_shape(self):
        lines = synthetic_result().csv().strip().splitlines()
        assert lines[0].startswith("multiplier,mode,ls_p99_ms")
        assert len(lines) == 1 + 2 * len(MULTIPLIERS)

    def test_report_carries_verdict(self):
        report = synthetic_result().report()
        assert "X-9" in report
        assert "GRACEFUL" in report
