"""``repro bench``: report schema, determinism, and the compare gate."""

import json

import pytest

from repro.experiments import ScenarioConfig, wall_timer
from repro.experiments.bench import (
    BENCH_SCHEMA,
    BenchResult,
    bench_scenarios,
    next_bench_path,
    run_bench,
)
from repro.obs.compare import compare_runs

#: One tiny-but-real bench config shared by the module (session-scoped
#: fixture: the grid simulates once, every test reads the result).
BENCH_CONFIG = dict(duration=1.0, warmup=0.25, rps=10.0, seed=42)


@pytest.fixture(scope="module")
def bench_result() -> BenchResult:
    return run_bench(workers=1, **BENCH_CONFIG)


@pytest.fixture()
def report(bench_result) -> dict:
    return bench_result.report()


class TestGrid:
    def test_scenarios_all_profiled_and_distinct(self):
        points = bench_scenarios(ScenarioConfig(**BENCH_CONFIG))
        labels = [point.label for point in points]
        assert len(labels) == len(set(labels))
        assert "figure4-on" in labels and "tail-tracing" in labels
        for point in points:
            assert point.config.profile is True

    def test_tail_tracing_point_sets_the_knob(self):
        points = {p.label: p for p in bench_scenarios(ScenarioConfig())}
        assert points["tail-tracing"].config.mesh.tracing_tail_keep == 5
        assert points["mux"].config.mesh.transport_spec().mux is True

    def test_dataplane_pair_differs_only_in_the_plane(self):
        points = {p.label: p for p in bench_scenarios(ScenarioConfig())}
        sidecar = points["dataplane-sidecar"].config
        ambient = points["dataplane-ambient"].config
        assert sidecar.nodes == 2 and ambient.nodes == 2
        assert sidecar.mesh.data_plane == "sidecar"
        assert ambient.mesh.data_plane == "ambient"

    def test_fluid_points_use_hybrid_fidelity(self):
        points = {p.label: p for p in bench_scenarios(ScenarioConfig())}
        for label in ("figure4-fluid", "uncongested-fluid"):
            assert points[label].config.transport.fidelity == "hybrid"
        assert points["uncongested-packet"].config.transport is None
        assert (
            points["uncongested-packet"].config.rps
            == points["uncongested-fluid"].config.rps
        )


class TestReport:
    def test_schema_and_shape(self, report):
        assert report["schema"] == BENCH_SCHEMA
        assert set(report["scenarios"]) == {
            "figure4-off", "figure4-on", "figure4-hot", "figure4-fluid",
            "uncongested-packet", "uncongested-fluid",
            "mux", "inbound-queue", "tail-tracing",
            "dataplane-sidecar", "dataplane-ambient",
        }
        for row in report["scenarios"].values():
            assert row["sim_events"] > 0
            assert row["wall_seconds"] > 0
            assert row["events_per_wall_second"] > 0
            assert row["profile"]["events"]
        assert report["config"]["seed"] == 42
        assert report["cache"]["simulated"] == 11
        assert report["machine"]["cpu_count"] >= 1

    def test_json_round_trip_and_trailing_newline(self, bench_result):
        blob = bench_result.json()
        assert blob.endswith("\n") and not blob.endswith("\n\n")
        assert blob == bench_result.json()  # byte-equal double export
        parsed = json.loads(blob)
        assert parsed["schema"] == BENCH_SCHEMA
        assert parsed["deterministic_digest"] == (
            bench_result.deterministic_digest()
        )

    def test_table_render(self, bench_result):
        table = bench_result.table()
        assert table.endswith("\n")
        assert "figure4-on" in table
        assert "deterministic digest:" in table
        assert "profile of slowest scenario" in table

    def test_digest_covers_only_deterministic_fields(self, bench_result):
        digest = bench_result.deterministic_digest()
        rows = bench_result.scenario_rows()
        # Perturbing wall-clock must not move the digest...
        rows["mux"]["wall_seconds"] *= 100
        assert bench_result.deterministic_digest(rows) == digest
        # ...but perturbing an event count must.
        rows["mux"]["sim_events"] += 1
        assert bench_result.deterministic_digest(rows) != digest


class TestNextBenchPath:
    def test_empty_directory_starts_at_one(self, tmp_path):
        assert next_bench_path(tmp_path).name == "BENCH_1.json"

    def test_increments_past_existing(self, tmp_path):
        (tmp_path / "BENCH_1.json").write_text("{}")
        (tmp_path / "BENCH_7.json").write_text("{}")
        (tmp_path / "BENCH_nope.json").write_text("{}")
        assert next_bench_path(tmp_path).name == "BENCH_8.json"


class TestCompareGate:
    def _write(self, path, report):
        path.write_text(json.dumps(report) + "\n")

    def test_self_compare_passes(self, tmp_path, report):
        self._write(tmp_path / "base.json", report)
        self._write(tmp_path / "cand.json", report)
        result = compare_runs(tmp_path / "base.json", tmp_path / "cand.json")
        assert result.ok
        assert result.compared > 0

    def test_wall_metrics_ignored_by_default(self, tmp_path, report):
        import copy

        slower = copy.deepcopy(report)
        for row in slower["scenarios"].values():
            row["wall_seconds"] *= 10
            row["events_per_wall_second"] /= 10
        self._write(tmp_path / "base.json", report)
        self._write(tmp_path / "cand.json", slower)
        assert compare_runs(tmp_path / "base.json", tmp_path / "cand.json").ok
        gated = compare_runs(
            tmp_path / "base.json", tmp_path / "cand.json", include_wall=True
        )
        assert not gated.ok
        assert any(d.unit in ("wall_s", "events/s") for d in gated.regressions)

    def test_event_count_regression_fails(self, tmp_path, report):
        import copy

        worse = copy.deepcopy(report)
        worse["scenarios"]["mux"]["sim_events"] = int(
            worse["scenarios"]["mux"]["sim_events"] * 1.5
        )
        self._write(tmp_path / "base.json", report)
        self._write(tmp_path / "cand.json", worse)
        result = compare_runs(tmp_path / "base.json", tmp_path / "cand.json")
        assert not result.ok
        assert any(d.stat == "sim_events" for d in result.regressions)

    def test_improvement_passes(self, tmp_path, report):
        import copy

        better = copy.deepcopy(report)
        better["scenarios"]["mux"]["sim_events"] = int(
            better["scenarios"]["mux"]["sim_events"] * 0.5
        )
        self._write(tmp_path / "base.json", report)
        self._write(tmp_path / "cand.json", better)
        assert compare_runs(tmp_path / "base.json", tmp_path / "cand.json").ok

    def test_missing_scenario_fails(self, tmp_path, report):
        import copy

        partial = copy.deepcopy(report)
        del partial["scenarios"]["tail-tracing"]
        self._write(tmp_path / "base.json", report)
        self._write(tmp_path / "cand.json", partial)
        result = compare_runs(tmp_path / "base.json", tmp_path / "cand.json")
        assert not result.ok
        assert any("tail-tracing" in name for name in result.missing)


class TestWallTimer:
    def test_elapsed_frozen_after_exit(self):
        with wall_timer() as timer:
            live = timer.elapsed
        assert live >= 0.0
        frozen = timer.elapsed
        assert frozen >= live
        assert timer.elapsed == frozen

    def test_unentered_timer_reads_zero(self):
        assert wall_timer().elapsed == 0.0


class TestMeasurementProfile:
    def test_measurements_carry_profile_reports(self, bench_result):
        for measurement in bench_result.measurements.values():
            assert measurement.profile is not None
            assert measurement.profile["events"]
