"""X-11 integration: the seeded-fault grid localizes every graded
fault at top-1, deterministically — byte-identical tables and graph
artifacts whether the sweep runs serially or across workers."""

import pytest

from repro.experiments import DiagnoseExperiment, Runner, measure_diagnose
from repro.experiments.diagnose import (
    GRADED_NAMES,
    culprit_matches,
    diagnose_slo,
)
from repro.obs import Culprit

#: The scaled grid (what ``repro all`` runs): short enough for CI,
#: long enough that every fault window spans the SLO horizon.
TINY = dict(rps=30.0, duration=8.0, warmup=2.0, drain=10.0, seed=42)


def experiment():
    return DiagnoseExperiment(**TINY)


@pytest.fixture(scope="module")
def serial_result():
    with Runner(workers=1) as runner:
        return experiment().run(runner)


class TestCulpritMatches:
    def _edge(self, src, dst, kind="edge"):
        return Culprit(
            kind=kind, name=f"{src}->{dst}", score=1.0,
            dominant_layer="retry", src=src, dst=dst,
            service=src if kind == "node" else None,
        )

    def test_pod_fault_requires_callee_match(self):
        edge = self._edge("frontend", "reviews")
        assert culprit_matches(edge, "reviews", "pod_kill")
        assert not culprit_matches(edge, "frontend", "pod_kill")
        assert culprit_matches(edge, "reviews", "sidecar_crash")

    def test_link_fault_accepts_either_endpoint(self):
        edge = self._edge("frontend", "reviews")
        assert culprit_matches(edge, "frontend", "latency")
        assert culprit_matches(edge, "reviews", "bandwidth")
        assert not culprit_matches(edge, "ratings", "latency")

    def test_node_culprit_must_name_the_service(self):
        node = Culprit(
            kind="node", name="reviews", score=1.0,
            dominant_layer="app", service="reviews",
        )
        assert culprit_matches(node, "reviews", "pod_kill")
        assert not culprit_matches(node, "frontend", "pod_kill")
        assert not culprit_matches(None, "reviews", "pod_kill")


class TestPointDeterminism:
    def test_same_point_same_diagnosis_and_artifacts(self):
        point = experiment().points()[0].config
        a = measure_diagnose(point)
        b = measure_diagnose(point)
        assert a.extra["diagnose"] == b.extra["diagnose"]
        assert a.extra["graph_dot"] == b.extra["graph_dot"]
        assert a.extra["graph_edges_csv"] == b.extra["graph_edges_csv"]
        assert a.counters == b.counters
        assert a.counters["faults_applied"] >= 1.0


class TestGradedGrid:
    def test_grid_shape(self):
        points = experiment().points()
        labels = [p.label for p in points]
        assert len(labels) == 7  # 2 topologies x 3 graded + metastable
        assert "figure4/metastable" in labels
        assert sum(1 for p in points if p.config.fault in GRADED_NAMES) == 6

    def test_top1_accuracy_is_total(self, serial_result):
        assert serial_result.accuracy == 1.0
        assert serial_result.misses() == []
        assert "100%" in serial_result.headline()

    def test_rows_carry_diagnosis_detail(self, serial_result):
        row = serial_result.row("figure4/link-latency")
        assert row.graded
        assert row.hit
        assert row.top_kind == "edge"
        assert row.alerts >= 1
        assert row.detect_s is not None and row.detect_s > 0.0
        meta = serial_result.row("figure4/metastable")
        assert not meta.graded

    def test_report_and_table_render(self, serial_result):
        report = serial_result.report()
        assert "X-11: root-cause localization" in report
        assert "top-1 localization accuracy" in report
        assert "diagnosis @" in report

    def test_graph_artifacts_per_run(self, serial_result, tmp_path):
        assert set(serial_result.dots) == {p.label for p in experiment().points()}
        for label, dot in serial_result.dots.items():
            assert dot.startswith("digraph services {")
            assert serial_result.edge_csvs[label].startswith("src,dst,class,")
        written = serial_result.write_artifacts(tmp_path)
        assert (tmp_path / "diagnose.csv").exists()
        assert (tmp_path / "graph_figure4_pod-kill.dot").exists()
        assert len(written) == 2 * len(serial_result.dots) + 1


class TestSerialVsWorkers:
    def test_byte_identical_across_execution_modes(self, serial_result):
        """The acceptance bar: serial and --workers 2 sweeps emit
        byte-identical grading CSVs and graph artifacts."""
        with Runner(workers=2) as runner:
            parallel = experiment().run(runner)
        assert serial_result.csv() == parallel.csv()
        assert serial_result.dots == parallel.dots
        assert serial_result.edge_csvs == parallel.edge_csvs
        assert serial_result.report() == parallel.report()


class TestSloSpec:
    def test_objective_shape(self):
        spec = diagnose_slo()
        assert spec.target == "LS"
        assert spec.threshold_s == pytest.approx(0.05)
        assert spec.window_s == pytest.approx(4.0)
