"""The sweep engine: caching, determinism, measurement pickling."""

import pickle
from dataclasses import dataclass, replace
from pathlib import Path

import pytest

from repro.experiments import (
    Runner,
    ScenarioConfig,
    ScenarioMeasurement,
    config_digest,
    measure_scenario,
    replicate,
    run_figure4,
)
from repro.experiments.runner import canonical
from repro.util.stats import LatencySummary

TINY = dict(rps=5.0, duration=1.5, warmup=0.3, drain=10.0)


@dataclass(frozen=True)
class _CountedPoint:
    """A trivial point whose execution leaves a mark on disk."""

    scratch: str
    value: float = 1.0


def _counted(point: _CountedPoint) -> ScenarioMeasurement:
    # Module-level so it is picklable and has a stable qualname for the
    # content hash; appends one line per actual execution.
    with open(point.scratch, "a") as handle:
        handle.write("ran\n")
    return ScenarioMeasurement(config=point, counters={"value": point.value})


def _executions(scratch: Path) -> int:
    return len(scratch.read_text().splitlines()) if scratch.exists() else 0


class TestDigest:
    def test_stable_across_equal_configs(self):
        a = ScenarioConfig(**TINY)
        b = ScenarioConfig(**TINY)
        assert config_digest(measure_scenario, a) == config_digest(measure_scenario, b)

    def test_sensitive_to_any_field_change(self):
        base = ScenarioConfig(**TINY)
        assert config_digest(measure_scenario, base) != config_digest(
            measure_scenario, replace(base, rps=6.0)
        )
        assert config_digest(measure_scenario, base) != config_digest(
            measure_scenario, replace(base, seed=7)
        )

    def test_sensitive_to_function(self):
        config = _CountedPoint(scratch="x")
        assert config_digest(_counted, config) != config_digest(
            measure_scenario, config
        )

    def test_canonical_dataclass_includes_class_and_fields(self):
        out = canonical(_CountedPoint(scratch="s", value=2.0))
        assert out["__class__"].endswith("_CountedPoint")
        assert out["scratch"] == "s" and out["value"] == 2.0

    def test_canonical_dict_key_order_irrelevant(self):
        assert canonical({"b": 1, "a": 2}) == canonical({"a": 2, "b": 1})


class TestCache:
    def test_hit_miss_and_invalidation(self, tmp_path):
        scratch = tmp_path / "marks.txt"
        point = _CountedPoint(scratch=str(scratch))
        cache_dir = tmp_path / "cache"

        with Runner(workers=1, cache_dir=cache_dir) as runner:
            runner.map(_counted, [point])
            assert runner.stats.simulated == 1 and runner.stats.hits == 0
        assert _executions(scratch) == 1

        # Same config, fresh runner: pure cache hit, no execution.
        with Runner(workers=1, cache_dir=cache_dir) as runner:
            [measurement] = runner.map(_counted, [point])
            assert runner.stats.hits == 1 and runner.stats.simulated == 0
        assert _executions(scratch) == 1
        assert measurement.counters["value"] == 1.0

        # Changing one field invalidates only through the content hash.
        with Runner(workers=1, cache_dir=cache_dir) as runner:
            runner.map(_counted, [point, replace(point, value=2.0)])
            assert runner.stats.hits == 1 and runner.stats.simulated == 1
        assert _executions(scratch) == 2

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        scratch = tmp_path / "marks.txt"
        point = _CountedPoint(scratch=str(scratch))
        cache_dir = tmp_path / "cache"
        with Runner(workers=1, cache_dir=cache_dir) as runner:
            runner.map(_counted, [point])
            path = runner.cache.path(config_digest(_counted, point))
        assert path.exists()
        path.write_bytes(b"not a pickle")
        with Runner(workers=1, cache_dir=cache_dir) as runner:
            runner.map(_counted, [point])
            assert runner.stats.simulated == 1
        assert _executions(scratch) == 2

    def test_no_cache_dir_means_no_caching(self, tmp_path):
        scratch = tmp_path / "marks.txt"
        point = _CountedPoint(scratch=str(scratch))
        with Runner(workers=1) as runner:
            runner.map(_counted, [point])
            runner.map(_counted, [point])
            assert runner.stats.simulated == 2
        assert _executions(scratch) == 2

    def test_progress_reports_cache_hits(self, tmp_path, capsys):
        point = _CountedPoint(scratch=str(tmp_path / "marks.txt"))
        cache_dir = tmp_path / "cache"
        import sys
        with Runner(workers=1, cache_dir=cache_dir, progress=True,
                    stream=sys.stderr) as runner:
            runner.map(_counted, [point], title="warm")
        with Runner(workers=1, cache_dir=cache_dir, progress=True,
                    stream=sys.stderr) as runner:
            runner.map(_counted, [point], title="cached")
        err = capsys.readouterr().err
        assert "cache hit" in err
        assert "1 cache hits, 0 simulated" in err


class TestMeasurement:
    def test_pickle_round_trip(self):
        measurement = measure_scenario(ScenarioConfig(**TINY))
        clone = pickle.loads(pickle.dumps(measurement))
        assert clone == measurement
        assert clone.ls == measurement.ls
        assert clone.counters["issued"] > 0

    def test_summaries_and_counters_present(self):
        measurement = measure_scenario(ScenarioConfig(**TINY))
        assert set(measurement.summaries) == {"ls", "li"}
        assert measurement.sim_events > 0
        assert measurement.sim_time > 0
        assert measurement.wall_clock > 0
        assert measurement.counters["mesh_requests"] > 0

    def test_empty_window_yields_empty_summary(self):
        # warmup past the generation window: no samples, but the point
        # must still produce a (cacheable) measurement.
        config = ScenarioConfig(rps=2.0, duration=0.5, warmup=10.0, drain=5.0)
        measurement = measure_scenario(config)
        assert measurement.ls == LatencySummary.empty()
        assert measurement.ls.count == 0


class TestDeterminism:
    def test_serial_and_parallel_figure4_identical_csv(self):
        base = ScenarioConfig(**TINY)
        levels = (5, 10)
        with Runner(workers=1) as serial:
            first = run_figure4(base, rps_levels=levels, runner=serial)
        with Runner(workers=2) as parallel:
            second = run_figure4(base, rps_levels=levels, runner=parallel)
        assert first.csv() == second.csv()
        assert first.table() == second.table()

    def test_map_preserves_input_order(self):
        configs = [
            ScenarioConfig(**{**TINY, "rps": rps}) for rps in (4.0, 6.0)
        ]
        with Runner(workers=2) as runner:
            measurements = runner.map(measure_scenario, configs)
        assert [m.config.rps for m in measurements] == [4.0, 6.0]

    def test_replicate_accepts_runner(self):
        config = ScenarioConfig(**TINY)
        with Runner(workers=2) as runner:
            with_runner = replicate(config, seeds=(1, 2), runner=runner)
        serial = replicate(config, seeds=(1, 2))
        assert with_runner.ls_p99.values == serial.ls_p99.values
        assert with_runner.seeds == [1, 2]


class TestExperimentBase:
    def test_shared_runner_across_experiments(self, tmp_path):
        from repro.experiments import Figure4Experiment, OverheadExperiment

        fig4 = Figure4Experiment(rps_levels=(5,), **TINY)
        overhead = OverheadExperiment(rps=20.0, duration=1.0, seed=1)
        with Runner(workers=2, cache_dir=tmp_path / "cache") as runner:
            pending = [fig4.submit(runner), overhead.submit(runner)]
            fig4_result = pending[0].result()
            overhead_result = pending[1].result()
            assert runner.stats.submitted == 4
        assert fig4_result.rows[0].rps == 5.0
        assert overhead_result.overhead_p99 != 0.0

    def test_defaults_apply_only_without_base_config(self):
        from repro.experiments import OverheadExperiment

        assert OverheadExperiment().base.rps == 50.0
        assert OverheadExperiment(ScenarioConfig(**TINY)).base.rps == 5.0
        assert OverheadExperiment(rps=12.0).base.rps == 12.0


class TestDrainEarlyExit:
    def test_drain_stops_on_empty_event_heap(self):
        from repro.experiments.scenario import _drain

        class FakeSim:
            now = 0.0

            def __init__(self):
                self.run_calls = 0

            def peek(self):
                return float("inf")

            def run(self, until):
                self.run_calls += 1

        class FakeMix:
            recorder = []      # 0 recorded
            issued = 5         # but 5 issued: the old loop would spin

        sim = FakeSim()
        _drain(sim, FakeMix(), deadline=1000.0)
        assert sim.run_calls == 0
