"""X-12 harness: grid shape, the USE snapshot, the knee verdict."""

import pytest

from repro.experiments import CapacityExperiment, CapacityResult, measure_capacity
from repro.experiments.capacity import (
    KNEE_TOLERANCE,
    MULTIPLIERS,
    SNAPSHOT_MULTIPLIER,
    TOPOLOGIES,
)
from repro.experiments.overload import LS_FRACTION
from repro.obs.resources import RESOURCES_CSV_HEADER

#: One sub-knee cell, scaled down for the unit suite.
SHORT = dict(duration=5.0, warmup=1.5, drain=20.0, seed=42, rps=30.0)


def cell_config(topo, multiplier):
    points = {p.label: p for p in CapacityExperiment(**SHORT).points()}
    return points[f"{topo}:x{multiplier:g}"].config


@pytest.fixture(scope="module")
def subknee_cell():
    return measure_capacity(cell_config("fig4", 0.7))


class TestGrid:
    def test_points_cover_both_topologies_at_every_multiplier(self):
        points = {p.label: p for p in CapacityExperiment(**SHORT).points()}
        assert set(points) == {
            f"{topo}:x{m:g}" for topo, _n in TOPOLOGIES for m in MULTIPLIERS
        }

    def test_rps_is_read_as_capacity(self):
        for point in CapacityExperiment(**SHORT).points():
            multiplier = float(point.label.split("x")[1])
            total = point.config.rps + point.config.li_rps
            assert total == pytest.approx(30.0 * multiplier)
            assert point.config.rps == pytest.approx(
                LS_FRACTION * 30.0 * multiplier
            )

    def test_posture_is_off_everywhere(self):
        for topo, nodes in TOPOLOGIES:
            config = cell_config(topo, 0.7)
            assert config.mesh.overload is None
            assert not config.cross_layer
            assert config.policy is None
            assert config.nodes == nodes


class TestSubkneeCell:
    def test_snapshot_rides_extra(self, subknee_cell):
        cell = subknee_cell.extra["capacity"]
        assert cell["offered_rps"] == pytest.approx(21.0)
        assert 0 < cell["goodput_rps"] <= cell["offered_rps"]
        rows = cell["resources"]
        assert rows, "USE snapshot missing"
        names = [row["resource"] for row in rows]
        assert names == sorted(names)
        header_fields = RESOURCES_CSV_HEADER.split(",")
        assert all(set(row) == set(header_fields) for row in rows)

    def test_frontend_pool_is_the_hot_resource(self, subknee_cell):
        rows = {
            row["resource"]: row
            for row in subknee_cell.extra["capacity"]["resources"]
        }
        frontend = rows["cpu:frontend-v1-1"]
        # ~21 rps against a ~32 rps single worker: well-utilized but
        # sub-knee; every other worker pool is far colder.
        assert 0.3 < frontend["utilization"] < 0.85
        other_pools = [
            row["utilization"]
            for name, row in rows.items()
            if row["kind"] == "worker-pool" and name != "cpu:frontend-v1-1"
        ]
        assert other_pools and max(other_pools) < frontend["utilization"]

    def test_measurement_is_deterministic(self, subknee_cell):
        again = measure_capacity(cell_config("fig4", 0.7))
        assert again.extra["capacity"] == subknee_cell.extra["capacity"]


def synthetic_result():
    """A hand-built grid: linear frontend utilization with a knee at
    30 rps, goodput that plateaus there, one cold link."""
    result = CapacityResult(capacity_rps=30.0)
    for topo, _nodes in TOPOLOGIES:
        for multiplier in MULTIPLIERS:
            offered = 30.0 * multiplier
            util = min(1.0, offered / 30.0)
            result.rows[(topo, multiplier)] = {
                "offered_rps": offered,
                "goodput_rps": min(offered, 30.0),
                "resources": [
                    {
                        "resource": "cpu:frontend-v1-1", "kind": "worker-pool",
                        "node": "node-0", "capacity": 1.0, "utilization": util,
                        "util_max": util, "saturation": 0.0, "sat_max": 0.0,
                        "errors": 0.0,
                    },
                    {
                        "resource": "link:core", "kind": "link",
                        "node": "core", "capacity": 1e9,
                        "utilization": util * 0.01, "util_max": util * 0.01,
                        "saturation": 0.0, "sat_max": 0.0, "errors": 0.0,
                    },
                ],
            }
    return result


class TestCapacityResult:
    def test_bottleneck_ranking_and_knee(self):
        result = synthetic_result()
        ranked = result.bottlenecks("fig4")
        assert ranked[0].resource == "cpu:frontend-v1-1"
        assert result.predicted_knee("fig4") == pytest.approx(30.0)
        assert result.measured_capacity("fig4") == pytest.approx(30.0)
        assert result.knee_error("fig4") == pytest.approx(0.0)
        assert result.passed

    def test_fails_outside_tolerance(self):
        result = synthetic_result()
        for (topo, multiplier), cell in result.rows.items():
            cell["goodput_rps"] *= 2.0  # fake a much higher plateau
        assert result.knee_error("fig4") > KNEE_TOLERANCE
        assert not result.passed

    def test_empty_result_fails(self):
        result = CapacityResult()
        assert not result.passed
        assert result.measured_capacity("fig4") == 0.0
        assert result.knee_error("fig4") == float("inf")
        assert result.predicted_knee("fig4") == float("inf")

    def test_report_and_headline(self):
        result = synthetic_result()
        report = result.report()
        assert "bottleneck ranking" in report
        assert "PASS" in report
        assert "cpu:frontend-v1-1" in report

    def test_csv_row_per_topology_multiplier_resource(self):
        result = synthetic_result()
        lines = result.csv().splitlines()
        assert lines[0].startswith("topology,multiplier,offered_rps")
        assert len(lines) == 1 + len(TOPOLOGIES) * len(MULTIPLIERS) * 2

    def test_write_artifacts(self, tmp_path):
        result = synthetic_result()
        written = {path.name for path in result.write_artifacts(tmp_path)}
        expected = {"capacity_curves.csv"}
        for topo, _nodes in TOPOLOGIES:
            expected.add(f"resources_{topo}.csv")
            expected.add(f"resources_{topo}.prom")
        assert written == expected
        snapshot = (tmp_path / "resources_fig4.csv").read_text()
        assert snapshot.splitlines()[0] == RESOURCES_CSV_HEADER
        assert result.snapshot_rows("fig4") == result.cell(
            "fig4", SNAPSHOT_MULTIPLIER
        )["resources"]
