"""X-5 integration: attribution sums to end-to-end latency and the
observe grid is deterministic across runs and execution modes."""

from dataclasses import replace

import pytest

from repro.experiments import (
    ObserveExperiment,
    Runner,
    ScenarioConfig,
    measure_observed,
)
from repro.obs import LAYERS

TINY = dict(rps=25.0, duration=2.0, warmup=0.3, drain=10.0, seed=42)


def experiment():
    return ObserveExperiment(**TINY)


class TestAttributionAcceptance:
    @pytest.fixture(scope="class")
    def measurement(self):
        return measure_observed(ScenarioConfig(**TINY, cross_layer=True))

    def test_requests_attributed(self, measurement):
        assert measurement.counters["attributed_requests"] > 0
        report = measurement.extra["attribution"]
        assert {"LS", "LI"} <= set(report)

    def test_layers_sum_within_one_percent(self, measurement):
        """The acceptance bar: per-layer components account for the
        end-to-end mean within 1% for every request class."""
        for request_class, row in measurement.extra["attribution"].items():
            total = sum(row["layer_means"][layer] for layer in LAYERS)
            assert total == pytest.approx(row["e2e_mean"], rel=0.01), request_class
            # And the worst single request, not just the mean:
            assert row["max_error"] <= 0.01

    def test_layers_have_mass(self, measurement):
        # The decomposition must be non-degenerate: app work, proxy
        # overhead, and transport residual all show up for LS traffic.
        ls = measurement.extra["attribution"]["LS"]
        for layer in ("app", "proxy", "transport"):
            assert ls["layer_means"][layer] > 0.0, layer

    def test_exemplar_segments_cover_request(self, measurement):
        for request_class, exemplar in measurement.extra["exemplars"].items():
            covered = sum(width for _, _, width in exemplar["segments"])
            assert covered == pytest.approx(exemplar["elapsed"], rel=1e-9)

    def test_critical_paths_collected(self, measurement):
        assert measurement.counters["traces_seen"] > 0
        assert measurement.extra["critical_path"]

    def test_no_dropped_intervals(self, measurement):
        # Instrumentation reporting on unknown roots would silently
        # skew the decomposition — it must be zero in a healthy run.
        assert measurement.counters["dropped_intervals"] == 0


class TestFluidModeAttribution:
    """X-8 rider: the per-layer decomposition must keep partitioning
    exactly when transfers ride the flow-level fast path."""

    @pytest.fixture(scope="class")
    def measurement(self):
        from repro.experiments.scenario import SIM_TRANSPORT_SPEC

        spec = replace(SIM_TRANSPORT_SPEC, fidelity="hybrid")
        return measure_observed(
            ScenarioConfig(**TINY, cross_layer=True, transport=spec)
        )

    def test_fluid_path_actually_used(self, measurement):
        assert measurement.counters["fluid_bytes"] > 0

    def test_residual_stays_within_one_percent(self, measurement):
        for request_class, row in measurement.extra["attribution"].items():
            total = sum(row["layer_means"][layer] for layer in LAYERS)
            assert total == pytest.approx(row["e2e_mean"], rel=0.01), request_class
            assert row["max_error"] <= 0.01

    def test_no_dropped_intervals(self, measurement):
        assert measurement.counters["dropped_intervals"] == 0


class TestDeterminism:
    def test_back_to_back_runs_identical(self):
        a = measure_observed(ScenarioConfig(**TINY))
        b = measure_observed(ScenarioConfig(**TINY))
        assert a.extra["obs_digest"] == b.extra["obs_digest"]
        assert a.extra["attribution"] == b.extra["attribution"]
        assert a.summaries == b.summaries

    def test_serial_vs_workers_identical(self):
        """Same seed, serial vs --workers 2: byte-identical CSV and
        equal registry digests."""
        with Runner(workers=1) as runner:
            serial = experiment().run(runner)
        with Runner(workers=2) as runner:
            parallel = experiment().run(runner)
        assert serial.csv() == parallel.csv()
        assert serial.digests == parallel.digests
        assert serial.report() == parallel.report()


class TestResultRendering:
    @pytest.fixture(scope="class")
    def result(self):
        with Runner(workers=2) as runner:
            return experiment().run(runner)

    def test_report_sections(self, result):
        text = result.report()
        assert "X-5: per-layer latency attribution" in text
        assert "LS mean per layer, off -> on:" in text
        assert "legend: A=app" in text
        assert "registry digests:" in text
        assert result.max_attribution_error <= 0.01

    def test_csv_covers_both_configs(self, result):
        lines = result.csv().splitlines()
        assert lines[0] == "config,class,layer,mean_s,share,count"
        tags = {line.split(",")[0] for line in lines[1:]}
        assert tags == {"off", "on"}
