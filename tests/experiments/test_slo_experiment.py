"""X-6 integration: the online SLO engine fires on the unoptimized
run, stays quiet on the optimized one, and the harness is deterministic
across execution modes."""

import json

import pytest

from repro.experiments import (
    Runner,
    ScenarioConfig,
    SloExperiment,
    measure_slo,
)
from repro.obs import compare_runs, parse_prometheus_text

#: Long enough for the burn-rate rules to fire (the fast rule needs
#: half the 4 s compliance window of evidence).
TINY = dict(rps=30.0, duration=4.0, warmup=1.0, drain=10.0, seed=42)

#: Shorter variant for determinism checks (alert activity not needed).
QUICK = dict(rps=25.0, duration=2.0, warmup=0.3, drain=10.0, seed=42)


def experiment(**overrides):
    params = dict(TINY)
    params.update(overrides)
    return SloExperiment(**params)


class TestSloAcceptance:
    @pytest.fixture(scope="class")
    def result(self):
        with Runner(workers=2) as runner:
            return experiment().run(runner)

    def test_unoptimized_run_fires_ls_alerts(self, result):
        assert result.alerts_fired("off", "LS-p99") >= 1
        assert result.violation_seconds("off", "LS-p99") > 0.0

    def test_optimized_run_stays_quiet(self, result):
        assert result.alerts_fired("on", "LS-p99") == 0
        assert result.violation_seconds("on", "LS-p99") == 0.0

    def test_ls_violation_strictly_lower_with_prioritization(self, result):
        assert result.ls_improved
        assert result.violation_seconds(
            "on", "LS-p99"
        ) < result.violation_seconds("off", "LS-p99")

    def test_healthy_li_slo_never_fires(self, result):
        assert result.alerts_fired("off", "LI-p99") == 0
        assert result.alerts_fired("on", "LI-p99") == 0

    def test_detect_before_resolve(self, result):
        stats = result.stats["off"]["LS-p99"]
        assert stats["time_to_detect"] is not None
        if stats["time_to_resolve"] is not None:
            assert stats["time_to_detect"] < stats["time_to_resolve"]

    def test_report_sections(self, result):
        text = result.report()
        assert "X-6: online SLO burn-rate alerting" in text
        assert "alert timeline (cross-layer off):" in text
        assert "alert timeline (cross-layer on):" in text
        assert "LS-p99 burn duration:" in text
        assert "registry digests:" in text

    def test_csv_timeline(self, result):
        lines = result.csv().splitlines()
        assert lines[0] == "config,slo,rule,kind,time_s,burn_long,burn_short"
        assert any(line.startswith("off,LS-p99") for line in lines[1:])


class TestArtifacts:
    @pytest.fixture(scope="class")
    def exported(self, tmp_path_factory):
        with Runner(workers=2) as runner:
            result = experiment().run(runner)
        out = tmp_path_factory.mktemp("slo-artifacts")
        written = result.write_artifacts(out)
        return out, written

    def test_expected_files(self, exported):
        out, written = exported
        names = {path.name for path in written}
        assert names == {
            "metrics_off.json", "metrics_on.json",
            "metrics_off.prom", "metrics_on.prom",
            "traces_off.json", "traces_on.json",
            "attribution.csv", "alerts.csv",
        }

    def test_prometheus_artifact_parses(self, exported):
        out, _ = exported
        parsed = parse_prometheus_text((out / "metrics_off.prom").read_text())
        assert parsed["types"].get("mesh_requests_total") == "counter"
        assert parsed["types"].get("slo_burn_rate") == "gauge"
        assert any(
            key.startswith("slo_observations_total")
            for key in parsed["samples"]
        )

    def test_jaeger_artifact_preserves_span_tree(self, exported):
        out, _ = exported
        data = json.loads((out / "traces_off.json").read_text())
        assert data["data"], "expected at least one exported trace"
        trace = data["data"][0]
        span_ids = {span["spanID"] for span in trace["spans"]}
        roots = 0
        for span in trace["spans"]:
            if not span["references"]:
                roots += 1
                continue
            (ref,) = span["references"]
            assert ref["refType"] == "CHILD_OF"
            assert ref["spanID"] in span_ids  # parent present in the tree
        assert roots == 1

    def test_compare_run_against_itself_is_clean(self, exported):
        out, _ = exported
        report = compare_runs(out, out)
        assert report.ok
        assert report.compared > 0

    def test_alert_timeline_artifact(self, exported):
        out, _ = exported
        lines = (out / "alerts.csv").read_text().splitlines()
        assert lines[0] == "config,slo,rule,kind,time_s,burn_long,burn_short"
        assert any(",fire," in line for line in lines[1:])


class TestDeterminism:
    def test_back_to_back_runs_identical(self):
        a = measure_slo(ScenarioConfig(**QUICK))
        b = measure_slo(ScenarioConfig(**QUICK))
        assert a.extra["alert_events"] == b.extra["alert_events"]
        assert a.extra["slo_stats"] == b.extra["slo_stats"]
        assert a.extra["obs_digest"] == b.extra["obs_digest"]
        assert a.extra["jaeger"] == b.extra["jaeger"]
        assert a.summaries == b.summaries

    def test_serial_vs_workers_identical(self):
        """Same seed, serial vs --workers 2: byte-identical timeline
        CSV and report."""
        with Runner(workers=1) as runner:
            serial = experiment(**QUICK).run(runner)
        with Runner(workers=2) as runner:
            parallel = experiment(**QUICK).run(runner)
        assert serial.csv() == parallel.csv()
        assert serial.report() == parallel.report()
        assert serial.digests == parallel.digests
