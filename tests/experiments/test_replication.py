"""Seed-replication harness."""

import pytest

from repro.experiments import Replicated, ScenarioConfig, replicate
from repro.experiments.replicate import compare_with_replication


class TestReplicatedMath:
    def test_mean_std_cv(self):
        metric = Replicated([0.010, 0.020, 0.030])
        assert metric.mean == pytest.approx(0.020)
        assert metric.std > 0
        assert metric.cv == pytest.approx(metric.std / 0.020)

    def test_zero_mean_cv(self):
        assert Replicated([0.0, 0.0]).cv == 0.0

    def test_str_in_ms(self):
        assert "ms" in str(Replicated([0.010]))


class TestReplicationRuns:
    @pytest.fixture(scope="class")
    def result(self):
        config = ScenarioConfig(rps=20.0, duration=3.0, warmup=1.0)
        return replicate(config, seeds=(1, 2))

    def test_all_metrics_populated(self, result):
        assert result.seeds == [1, 2]
        for metric in (result.ls_p50, result.ls_p99, result.li_p50, result.li_p99):
            assert len(metric.values) == 2
            assert all(value > 0 for value in metric.values)

    def test_seeds_differ(self, result):
        assert result.ls_p50.values[0] != result.ls_p50.values[1]

    def test_table_renders(self, result):
        table = result.table()
        assert "replication over seeds" in table
        assert "cv" in table

    def test_li_dominates_ls(self, result):
        # Structural sanity across all seeds: LI medians above LS medians.
        assert result.li_p50.mean > result.ls_p50.mean


def test_compare_with_replication_shows_the_effect():
    config = ScenarioConfig(rps=30.0, duration=3.0, warmup=1.0)
    baseline, optimized = compare_with_replication(config, seeds=(1, 2))
    # The optimization effect exceeds the seed noise at every seed.
    for off, on in zip(baseline.ls_p99.values, optimized.ls_p99.values):
        assert on < off
