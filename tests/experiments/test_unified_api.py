"""The unified harness contract:

    run_<name>(base_config=None, *, runner=None, **overrides)

plus the deprecation shims for the old ad-hoc signatures.
"""

import inspect
import warnings

import pytest

from repro.experiments import (
    ScenarioConfig,
    run_ablations,
    run_compute,
    run_figure4,
    run_hedging,
    run_hops,
    run_inference,
    run_observe,
    run_overhead,
    run_te,
)
from repro.dataplane import ProxyCostModel
from repro.mesh.config import MeshConfig

ALL_HARNESSES = [
    run_figure4,
    run_overhead,
    run_hops,
    run_ablations,
    run_te,
    run_hedging,
    run_inference,
    run_compute,
    run_observe,
]


class TestContract:
    @pytest.mark.parametrize("harness", ALL_HARNESSES, ids=lambda f: f.__name__)
    def test_signature_shape(self, harness):
        signature = inspect.signature(harness)
        parameters = list(signature.parameters.values())
        first = parameters[0]
        assert first.name == "base_config"
        assert first.default is None
        runner = signature.parameters["runner"]
        assert runner.kind is inspect.Parameter.KEYWORD_ONLY
        assert runner.default is None
        assert any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters
        ), f"{harness.__name__} must accept **overrides"

    def test_overrides_patch_scenario_fields(self):
        # rps/duration/seed are plain ScenarioConfig overrides now — the
        # old per-harness keyword arguments keep working through them.
        result = run_overhead(rps=20.0, duration=1.0, seed=3)
        assert result.with_mesh.count > 0

    def test_base_config_positional(self):
        base = ScenarioConfig(rps=20.0, duration=1.0, warmup=0.25, seed=3)
        result = run_overhead(base)
        assert result.with_mesh.count > 0


class TestDeprecationShims:
    def test_figure4_positional_levels(self):
        with pytest.warns(DeprecationWarning, match="rps_levels"):
            result = run_figure4(
                (5,), duration=1.0, warmup=0.25, drain=5.0
            )
        assert [row.rps for row in result.rows] == [5.0]

    def test_ablations_positional_variants(self):
        with pytest.warns(DeprecationWarning, match="variants"):
            result = run_ablations(
                ["baseline"], rps=5.0, duration=1.0, warmup=0.25, drain=5.0
            )
        assert set(result.ls) == {"baseline"}

    def test_overhead_mesh_config_keyword(self):
        with pytest.warns(DeprecationWarning, match="mesh_config"):
            result = run_overhead(
                mesh_config=MeshConfig(), rps=20.0, duration=1.0
            )
        assert result.overhead_p99 != 0.0

    def test_hops_mesh_config_keyword(self):
        with pytest.warns(DeprecationWarning, match="mesh_config"):
            result = run_hops(
                mesh_config=MeshConfig(), depths=(1,), rps=10.0, duration=1.0
            )
        assert result.rows[0].depth == 1


class TestShimWarnOnce:
    """Each deprecated spelling must warn exactly once per call AND
    still forward the value it carried — a shim that warns twice (or
    silently drops the argument) regresses the PR-1 migration story."""

    @staticmethod
    def _deprecations(caught):
        return [w for w in caught if issubclass(w.category, DeprecationWarning)]

    def test_figure4_positional_levels_once_and_forwarded(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run_figure4((7,), duration=1.0, warmup=0.25, drain=5.0)
        assert len(self._deprecations(caught)) == 1
        assert [row.rps for row in result.rows] == [7.0]

    def test_ablations_positional_variants_once_and_forwarded(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run_ablations(
                ["baseline"], rps=5.0, duration=1.0, warmup=0.25, drain=5.0
            )
        assert len(self._deprecations(caught)) == 1
        assert set(result.ls) == {"baseline"}

    def test_overhead_mesh_config_once_and_forwarded(self):
        # A distinctive proxy cost must reach the simulation through the
        # shim, not just avoid crashing.
        slow = MeshConfig(proxy_cost=ProxyCostModel(traversal_median=5e-3, traversal_p99=6e-3))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run_overhead(mesh_config=slow, rps=20.0, duration=1.0)
        assert len(self._deprecations(caught)) == 1
        # Four proxy traversals at a 5 ms median dominate the near-zero
        # baseline by construction.
        assert result.overhead_p50 > 10e-3
