"""X-10 integration: the dissection grid is deterministic, the proxy
sub-components close against the proxy layer, and the architecture
ordering (none < ambient < sidecar) holds end to end."""

import pytest

import repro.experiments.dataplane as dp
from repro.experiments import (
    DataplaneExperiment,
    Runner,
    ScenarioConfig,
    measure_dataplane,
)
from repro.experiments.dataplane import _mesh_for
from repro.obs.attribution import LAYER_PROXY

TINY = dict(rps=20.0, duration=2.0, warmup=0.3, drain=10.0, seed=42)


@pytest.fixture
def small_grid(monkeypatch):
    """Shrink the grid so the full experiment runs in test time."""
    monkeypatch.setattr(dp, "RPS_LEVELS", (20.0,))
    monkeypatch.setattr(
        dp, "PROTOCOLS", {"plain": {}, "mtls": dp.PROTOCOLS["mtls"]}
    )


def cell(arch, proto="plain"):
    return ScenarioConfig(**TINY, nodes=2, mesh=_mesh_for(arch, proto))


class TestMeasureDataplane:
    @pytest.fixture(scope="class")
    def by_arch(self):
        return {
            arch: measure_dataplane(
                ScenarioConfig(**TINY, nodes=2, mesh=_mesh_for(arch, "mtls"))
            )
            for arch in ("sidecar", "ambient", "none")
        }

    def test_components_close_against_proxy_layer(self, by_arch):
        for arch in ("sidecar", "ambient"):
            report = by_arch[arch].extra["attribution"]
            for request_class, row in report.items():
                proxy = row["layer_means"][LAYER_PROXY]
                total = sum(row["proxy_component_means"].values())
                assert proxy > 0.0, (arch, request_class)
                assert total == pytest.approx(proxy, rel=0.01), (
                    arch, request_class,
                )

    def test_nomesh_has_zero_proxy_attribution(self, by_arch):
        report = by_arch["none"].extra["attribution"]
        assert report, "no requests attributed"
        for row in report.values():
            assert row["layer_means"][LAYER_PROXY] == 0.0
            assert row["proxy_component_means"] == {}
            # The partition still closes without a proxy layer.
            assert row["max_error"] <= 0.01

    def test_ambient_cheaper_than_sidecar(self, by_arch):
        def proxy_seconds(measurement):
            return sum(
                row["layers"][LAYER_PROXY]
                for row in measurement.extra["attribution"].values()
            )

        assert proxy_seconds(by_arch["ambient"]) < proxy_seconds(
            by_arch["sidecar"]
        )

    def test_ambient_reports_node_proxies(self, by_arch):
        proxies = by_arch["ambient"].extra["node_proxies"]
        assert {p["node"] for p in proxies} == {"node-0", "node-1"}
        assert all(p["traversals"] > 0 for p in proxies)
        assert "node_proxies" not in by_arch["sidecar"].extra

    def test_back_to_back_determinism(self):
        first = measure_dataplane(cell("ambient"))
        second = measure_dataplane(cell("ambient"))
        assert first.sim_events == second.sim_events
        assert first.extra["attribution"] == second.extra["attribution"]


class TestExperimentGrid:
    def test_serial_vs_parallel_byte_identical(self, small_grid):
        with Runner(workers=1, cache_dir=None) as serial:
            a = DataplaneExperiment(**TINY).run(serial)
        with Runner(workers=2, cache_dir=None) as parallel:
            b = DataplaneExperiment(**TINY).run(parallel)
        assert a.csv() == b.csv()
        assert a.report() == b.report()

    def test_invariants_and_rendering(self, small_grid):
        result = DataplaneExperiment(**TINY).run()
        assert result.max_component_residual <= 0.01
        assert result.max_nomesh_proxy_seconds == 0.0
        assert result.ambient_leaner_everywhere
        report = result.report()
        assert "X-10" in report and "PASS" in report and "FAIL" not in report
        assert set(result.figure4) == {"sidecar", "ambient", "none"}
        for arch, stage in result.figure4.items():
            assert stage["off"]["p99"] > 0 and stage["on"]["p99"] > 0
        lines = result.csv().strip().splitlines()
        assert lines[0].startswith("section,arch,proto,rps,class,name")
        assert any(line.startswith("figure4,") for line in lines)
        assert any(line.startswith("component,") for line in lines)
