"""X-3 integration: the chaos grid is deterministic — the same seed
produces the byte-identical fault timeline and CSV whether the sweep
runs serially or across worker processes."""

from repro.chaos import FaultProfile, FaultSpec
from repro.experiments import (
    ResilienceExperiment,
    ResiliencePoint,
    Runner,
    ScenarioConfig,
    measure_resilience,
)

TINY = dict(rps=20.0, duration=2.0, warmup=0.3, drain=10.0, seed=42)

#: High-rate profile tuned so faults actually land inside a 2 s run.
PROFILES = {
    "flaky": FaultProfile(
        name="flaky",
        faults=(
            FaultSpec(
                kind="latency", rate=5.0, duration=0.3, severity=0.002,
                start=0.2,
            ),
            FaultSpec(
                kind="pod_kill", rate=3.0, duration=0.5, start=0.2,
                scope="redundant",
            ),
        ),
    ),
    "lossy": FaultProfile(
        name="lossy",
        faults=(
            FaultSpec(
                kind="loss", rate=4.0, duration=0.4, severity=0.05, start=0.2
            ),
        ),
    ),
}


def experiment():
    return ResilienceExperiment(profiles=PROFILES, **TINY)


class TestPointDeterminism:
    def test_same_seed_same_timeline_and_summaries(self):
        point = ResiliencePoint(
            scenario=ScenarioConfig(**TINY), profile=PROFILES["flaky"]
        )
        a = measure_resilience(point)
        b = measure_resilience(point)
        assert a.extra["fault_timeline"] == b.extra["fault_timeline"]
        assert a.counters["faults_applied"] > 0
        assert a.counters == b.counters
        assert a.summaries == b.summaries

    def test_different_seed_different_timeline(self):
        base = ScenarioConfig(**TINY)
        a = measure_resilience(
            ResiliencePoint(scenario=base, profile=PROFILES["flaky"])
        )
        other = ScenarioConfig(**{**TINY, "seed": 7})
        b = measure_resilience(
            ResiliencePoint(scenario=other, profile=PROFILES["flaky"])
        )
        assert a.extra["fault_timeline"] != b.extra["fault_timeline"]


class TestSerialVsWorkers:
    def test_csv_identical_across_execution_modes(self):
        """The acceptance bar: serial and --workers 2 runs of the same
        seed emit byte-identical CSVs (timeline digests included)."""
        with Runner(workers=1) as runner:
            serial = experiment().run(runner)
        with Runner(workers=2) as runner:
            parallel = experiment().run(runner)
        assert serial.csv() == parallel.csv()
        for name in PROFILES:
            assert serial.row(name).faults_applied > 0
            assert serial.row(name).timeline_sha == parallel.row(name).timeline_sha
