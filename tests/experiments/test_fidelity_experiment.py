"""X-8 harness: grid shape, tolerance gate, and determinism."""

import pytest

from repro.experiments import (
    FidelityExperiment,
    FidelityResult,
    FidelityRow,
    Runner,
    run_fidelity,
)
from repro.experiments.fidelity import TOLERANCE_ABS, TOLERANCE_REL, diverges
from repro.util.stats import summarize

#: One small-but-real grid shared by the module.
TINY = dict(rps_levels=(8.0,), duration=1.5, warmup=0.4, drain=10.0, seed=42)


@pytest.fixture(scope="module")
def result() -> FidelityResult:
    return run_fidelity(**TINY)


class TestGrid:
    def test_points_pair_each_level(self):
        experiment = FidelityExperiment(rps_levels=(5.0, 9.0), duration=1.0)
        points = {p.label: p for p in experiment.points()}
        assert set(points) == {
            "rps=5/packet", "rps=5/fluid", "rps=9/packet", "rps=9/fluid",
        }
        for label, point in points.items():
            assert point.config.profile is True
            expected = "hybrid" if label.endswith("fluid") else "packet"
            assert point.config.transport.fidelity == expected

    def test_rps_levels_override_base_rps(self):
        experiment = FidelityExperiment(rps_levels=(5.0,), rps=99.0)
        for point in experiment.points():
            assert point.config.rps == 5.0


class TestTolerance:
    def test_diverges_relative(self):
        assert diverges(0.010, 0.010 * (1 + TOLERANCE_REL) + 1e-9)
        assert not diverges(0.010, 0.010 * (1 + TOLERANCE_REL) - 1e-9)

    def test_diverges_absolute_floor(self):
        # 40 µs apart on a 100 µs percentile: 40% relative, but inside
        # the absolute floor.
        assert not diverges(100e-6, 140e-6)
        assert diverges(100e-6, 100e-6 + TOLERANCE_ABS + 1e-9)

    def test_row_reports_both_stats(self):
        row = FidelityRow(
            rps=10.0,
            workload="LI",
            packet=summarize([0.010] * 10),
            fluid=summarize([0.020] * 10),
        )
        problems = row.divergences()
        assert len(problems) == 2
        assert any("p50" in p for p in problems)
        assert any("p99" in p for p in problems)

    def test_result_passes_when_rows_agree(self):
        summary = summarize([0.010, 0.011, 0.012])
        result = FidelityResult(
            rows=[FidelityRow(10.0, "LS", summary, summary)]
        )
        assert result.passed
        assert result.violations() == []


class TestResult:
    def test_rows_cover_both_workloads(self, result):
        assert [(r.rps, r.workload) for r in result.rows] == [
            (8.0, "LS"), (8.0, "LI"),
        ]
        for row in result.rows:
            assert row.packet.count > 0
            assert row.fluid.count > 0

    def test_levels_report_event_reduction(self, result):
        (level,) = result.levels
        assert level.packet_transport_events > 0
        assert level.fluid_transport_events > 0
        # The tentpole claim: flow-level dispatches far fewer transport
        # events on a lightly loaded scenario.
        assert level.event_reduction >= 3.0
        assert result.best_event_reduction == level.event_reduction

    def test_agreement_on_tiny_grid(self, result):
        assert result.passed, result.violations()

    def test_table_and_csv_render(self, result):
        table = result.table()
        assert "fluid" in table and "rps=8" in table
        csv_text = result.csv()
        assert csv_text.splitlines()[0] == (
            "rps,workload,p50_packet_s,p50_fluid_s,p99_packet_s,p99_fluid_s"
        )
        assert len(csv_text.splitlines()) == 1 + len(result.rows)


class TestDeterminism:
    def test_back_to_back_runs_are_byte_identical(self, result):
        again = run_fidelity(**TINY)
        assert again.csv() == result.csv()
        assert [
            (lv.packet_transport_events, lv.fluid_transport_events)
            for lv in again.levels
        ] == [
            (lv.packet_transport_events, lv.fluid_transport_events)
            for lv in result.levels
        ]

    def test_serial_and_parallel_runs_agree(self, result):
        with Runner(workers=2, cache_dir=None) as runner:
            parallel = run_fidelity(runner=runner, **TINY)
        assert parallel.csv() == result.csv()
        assert [
            (lv.packet_transport_events, lv.fluid_transport_events)
            for lv in parallel.levels
        ] == [
            (lv.packet_transport_events, lv.fluid_transport_events)
            for lv in result.levels
        ]
