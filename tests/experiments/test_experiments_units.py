"""Unit tests for experiment harness plumbing (no long runs)."""

import pytest

from repro.core import CrossLayerPolicy
from repro.experiments import (
    Figure4Result,
    Figure4Row,
    PAPER_RPS_LEVELS,
    ScenarioConfig,
    ablation_policies,
    chain_specs,
    format_table,
    ms,
    to_csv,
)
from repro.experiments.hops import HopsResult, HopsRow
from repro.experiments.overhead import OverheadResult
from repro.util.stats import LatencySummary


def summary(p50, p99):
    return LatencySummary(
        count=100, mean=p50, p50=p50, p90=(p50 + p99) / 2,
        p99=p99, p999=p99, maximum=p99, minimum=p50 / 2,
    )


class TestScenarioConfig:
    def test_defaults_match_paper(self):
        config = ScenarioConfig()
        assert config.nodes == 1
        assert config.cores_per_node == 32        # the paper's server
        assert config.arrivals == "uniform"       # §4.3
        assert config.elibrary.bottleneck_bps == 1e9
        assert config.elibrary.batch_multiplier == 200.0

    def test_effective_policy_resolution(self):
        assert not ScenarioConfig(cross_layer=False).effective_policy().any_enabled
        paper = ScenarioConfig(cross_layer=True).effective_policy()
        assert paper.replica_pinning and paper.tc_prio
        custom = CrossLayerPolicy(scavenger_transport=True)
        assert ScenarioConfig(policy=custom).effective_policy() is custom

    def test_paper_rps_levels(self):
        assert PAPER_RPS_LEVELS == (10, 20, 30, 40, 50)


class TestFigure4Math:
    def make_row(self):
        return Figure4Row(
            rps=30,
            ls_off=summary(0.020, 0.060),
            ls_on=summary(0.010, 0.020),
            li_off=summary(0.050, 0.100),
            li_on=summary(0.050, 0.103),
        )

    def test_speedups(self):
        row = self.make_row()
        assert row.p50_speedup == pytest.approx(2.0)
        assert row.p99_speedup == pytest.approx(3.0)
        assert row.li_p99_cost == pytest.approx(0.03)

    def test_result_aggregates(self):
        result = Figure4Result(rows=[self.make_row(), self.make_row()])
        assert result.mean_p50_speedup == pytest.approx(2.0)
        assert result.worst_li_p99_cost == pytest.approx(0.03)

    def test_table_and_csv_render(self):
        result = Figure4Result(rows=[self.make_row()])
        table = result.table()
        assert "Figure 4" in table and "30" in table
        csv = result.csv()
        assert csv.splitlines()[0].startswith("rps,")
        assert "30" in csv


class TestReportHelpers:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4  # header, divider, 2 rows
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_table_title(self):
        assert format_table(["x"], [], title="T").splitlines()[0] == "T"

    def test_to_csv(self):
        out = to_csv(["a", "b"], [[1, 2]])
        assert out.splitlines() == ["a,b", "1,2"]

    def test_ms(self):
        assert ms(0.0123) == "12.3"


class TestAblationCatalogue:
    def test_expected_variants_present(self):
        policies = ablation_policies()
        assert {"baseline", "paper-prototype", "pinning-only", "tc-only",
                "scavenger-only", "full-stack", "strict-99"} <= set(policies)
        assert not policies["baseline"].any_enabled
        assert policies["tc-only"].tc_classify_on == "tos"
        assert policies["strict-99"].high_share == 0.99

    def test_scavenger_only_shape(self):
        policy = ablation_policies()["scavenger-only"]
        assert policy.scavenger_transport
        assert not policy.replica_pinning and not policy.tc_prio


class TestHopsAndOverheadMath:
    def test_chain_specs_structure(self):
        specs = chain_specs(4)
        assert [s.name for s in specs] == ["hop-1", "hop-2", "hop-3", "hop-4"]
        assert specs[0].children == ("hop-2",)
        assert specs[-1].children == ()
        with pytest.raises(ValueError):
            chain_specs(0)

    def test_hops_result_math(self):
        rows = [
            HopsRow(1, summary(0.003, 0.005), summary(0.001, 0.002)),
            HopsRow(9, summary(0.019, 0.025), summary(0.001, 0.002)),
        ]
        result = HopsResult(rows)
        assert result.overhead_per_hop_p50() == pytest.approx(0.002)
        assert "T-3" in result.table()

    def test_overhead_result_math(self):
        result = OverheadResult(
            with_mesh=summary(0.003, 0.006),
            near_zero_proxy=summary(0.001, 0.002),
        )
        assert result.overhead_p50 == pytest.approx(0.002)
        assert result.overhead_p99 == pytest.approx(0.004)
        assert "3 ms" in result.table()
