"""CLI: argument parsing and (tiny) experiment dispatch."""

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for name in COMMANDS:
            args = parser.parse_args([name])
            assert args.command == name

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_flags(self):
        args = build_parser().parse_args(
            ["figure4", "--full", "--seed", "7", "--csv", "out.csv"]
        )
        assert args.full and args.seed == 7 and args.csv == "out.csv"

    def test_duration_flag(self):
        args = build_parser().parse_args(["overhead", "--duration", "3.5"])
        assert args.duration == 3.5


class TestDispatch:
    def test_overhead_runs_and_prints(self, capsys):
        code = main(["overhead", "--duration", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "T-2 sidecar overhead" in out
        assert "p99" in out

    def test_figure4_csv_output(self, tmp_path, capsys):
        csv_path = tmp_path / "fig4.csv"
        # A micro-sweep: patch the scaled levels by running with a tiny
        # duration; the CLI still runs 3 levels x 2 configs, so keep the
        # duration minimal via --duration (scaled config uses 8 s, which
        # would be slow here; the CLI maps duration only for non-sweep
        # commands, so use the real scaled sweep only under --full).
        code = main(["hedging", "--duration", "2"])
        assert code == 0
        assert "hedged requests" in capsys.readouterr().out
        assert not csv_path.exists()
