"""CLI: argument parsing and (tiny) experiment dispatch."""

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for name in COMMANDS:
            args = parser.parse_args([name])
            assert args.command == name

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_flags(self):
        args = build_parser().parse_args(
            ["figure4", "--full", "--seed", "7", "--csv", "out.csv"]
        )
        assert args.full and args.seed == 7 and args.csv == "out.csv"

    def test_duration_flag(self):
        args = build_parser().parse_args(["overhead", "--duration", "3.5"])
        assert args.duration == 3.5

    def test_sweep_flags(self):
        args = build_parser().parse_args(
            ["figure4", "--workers", "4", "--cache-dir", "/tmp/c",
             "--rps", "12.5", "--no-cache"]
        )
        assert args.workers == 4
        assert args.cache_dir == "/tmp/c"
        assert args.rps == 12.5
        assert args.no_cache

    def test_sweep_flag_defaults(self):
        args = build_parser().parse_args(["all"])
        assert args.workers is None          # runner decides (cpu count)
        assert args.duration is None         # explicit value always wins
        assert not args.no_cache

    def test_out_flag(self):
        args = build_parser().parse_args(["slo", "--out", "artifacts"])
        assert args.out == "artifacts"
        assert build_parser().parse_args(["slo"]).out is None

    def test_compare_args(self):
        args = build_parser().parse_args(
            ["compare", "base", "cand", "--threshold", "0.1"]
        )
        assert args.command == "compare"
        assert args.baseline == "base" and args.candidate == "cand"
        assert args.threshold == 0.1

    def test_duration_not_ignored_under_full(self):
        # The old CLI silently used the --full duration even when the
        # user passed --duration explicitly. Explicit now always wins.
        from repro.cli import _overrides

        args = build_parser().parse_args(
            ["overhead", "--full", "--duration", "3.0"]
        )
        assert _overrides(args, full_duration=30.0)["duration"] == 3.0
        args = build_parser().parse_args(["overhead", "--full"])
        assert _overrides(args, full_duration=30.0)["duration"] == 30.0


class TestDispatch:
    def test_overhead_runs_and_prints(self, capsys):
        code = main(["overhead", "--duration", "2", "--workers", "1", "--no-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "T-2 sidecar overhead" in out
        assert "p99" in out

    def test_hedging_runs_without_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "fig4.csv"
        code = main(["hedging", "--duration", "2", "--workers", "1", "--no-cache"])
        assert code == 0
        assert "hedged requests" in capsys.readouterr().out
        assert not csv_path.exists()

    def test_cache_hits_on_second_invocation(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = ["overhead", "--duration", "1", "--workers", "1",
                "--cache-dir", cache_dir]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "0 cache hits" in first.err
        # Warm cache: both points come back without re-simulating.
        assert main(argv) == 0
        second = capsys.readouterr()
        assert "2 cache hits, 0 simulated" in second.err
        assert second.out == first.out   # identical table, byte for byte

    def test_parallel_workers_dispatch(self, capsys):
        code = main(["overhead", "--duration", "1", "--workers", "2", "--no-cache"])
        assert code == 0
        assert "T-2 sidecar overhead" in capsys.readouterr().out

    def test_slo_runs_and_writes_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "snapshot"
        code = main([
            "slo", "--duration", "2", "--workers", "1", "--no-cache",
            "--out", str(out_dir),
        ])
        assert code == 0
        assert "X-6: online SLO burn-rate alerting" in capsys.readouterr().out
        assert (out_dir / "alerts.csv").exists()
        assert (out_dir / "metrics_off.prom").exists()
        assert (out_dir / "traces_on.json").exists()
