"""Arrival processes, latency recording, open-loop generation."""

import numpy as np
import pytest

from helpers import MeshTestbed, echo_handler

from repro.sim import RngRegistry
from repro.workload import (
    DeterministicArrivals,
    LatencyRecorder,
    LoadGenerator,
    MixConfig,
    MixedWorkload,
    PoissonArrivals,
    UniformRandomArrivals,
    WorkloadSpec,
    make_arrivals,
)


class TestArrivals:
    def test_uniform_mean_is_one_over_rate(self):
        arrivals = UniformRandomArrivals(20.0, np.random.default_rng(0))
        gaps = [arrivals.next_gap() for _ in range(20_000)]
        assert np.mean(gaps) == pytest.approx(1 / 20.0, rel=0.02)
        assert max(gaps) <= 2 / 20.0

    def test_poisson_mean(self):
        arrivals = PoissonArrivals(10.0, np.random.default_rng(0))
        gaps = [arrivals.next_gap() for _ in range(20_000)]
        assert np.mean(gaps) == pytest.approx(0.1, rel=0.03)

    def test_deterministic(self):
        arrivals = DeterministicArrivals(4.0)
        assert arrivals.next_gap() == 0.25

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            DeterministicArrivals(0)

    def test_registry(self):
        rng = np.random.default_rng(0)
        assert isinstance(make_arrivals("uniform", 1, rng), UniformRandomArrivals)
        assert isinstance(make_arrivals("poisson", 1, rng), PoissonArrivals)
        assert isinstance(
            make_arrivals("deterministic", 1, rng), DeterministicArrivals
        )
        with pytest.raises(ValueError):
            make_arrivals("bursty", 1, rng)


class TestLatencyRecorder:
    def test_filters(self):
        recorder = LatencyRecorder()
        recorder.record("ls", sent_at=1.0, latency=0.01, status=200)
        recorder.record("ls", sent_at=5.0, latency=0.02, status=200)
        recorder.record("li", sent_at=1.0, latency=0.50, status=200)
        recorder.record("ls", sent_at=2.0, latency=9.99, status=504)
        assert recorder.latencies("ls") == [0.01, 0.02]
        assert recorder.latencies("ls", window=(0.0, 2.0)) == [0.01]
        assert recorder.latencies() == [0.01, 0.02, 0.50]

    def test_error_rate(self):
        recorder = LatencyRecorder()
        recorder.record("w", 0, 0.01, 200)
        recorder.record("w", 0, 0.01, 503)
        assert recorder.error_rate("w") == 0.5
        assert recorder.error_rate("empty") == 0.0

    def test_summary(self):
        recorder = LatencyRecorder()
        for latency in (0.01, 0.02, 0.03):
            recorder.record("w", 0, latency, 200)
        assert recorder.summary("w").p50 == 0.02

    def test_len(self):
        recorder = LatencyRecorder()
        assert len(recorder) == 0
        recorder.record("w", 0, 0.01, 200)
        assert len(recorder) == 1


class TestLoadGenerator:
    def make(self, rps=50.0, duration=2.0, **spec_kwargs):
        testbed = MeshTestbed()
        testbed.add_service("echo", echo_handler(), workers=32)
        gateway = testbed.finish("echo")
        recorder = LatencyRecorder()
        generator = LoadGenerator(
            testbed.sim,
            gateway,
            WorkloadSpec(name="w", rps=rps, **spec_kwargs),
            recorder,
            RngRegistry(0),
        )
        generator.start(duration)
        testbed.sim.run(until=duration + 5.0)
        return testbed, generator, recorder

    def test_offered_load_close_to_rps(self):
        _, generator, _ = self.make(rps=50.0, duration=4.0)
        assert generator.issued == pytest.approx(200, rel=0.15)

    def test_all_requests_complete_and_recorded(self):
        _, generator, recorder = self.make()
        assert generator.completed == generator.issued
        assert len(recorder) == generator.issued
        assert generator.failed == 0

    def test_workload_type_marked(self):
        testbed = MeshTestbed()
        seen = []

        def capture(ctx, request):
            seen.append(request.headers.get("x-workload"))
            yield ctx.sleep(0.001)
            return request.reply(body_size=1)

        testbed.add_service("cap", capture)
        gateway = testbed.finish("cap")
        generator = LoadGenerator(
            testbed.sim,
            gateway,
            WorkloadSpec(name="w", rps=30, workload_type="batch"),
            LatencyRecorder(),
            RngRegistry(0),
        )
        generator.start(1.0)
        testbed.sim.run(until=3.0)
        assert seen and all(value == "batch" for value in seen)

    def test_cannot_start_twice(self):
        testbed = MeshTestbed()
        testbed.add_service("echo", echo_handler())
        gateway = testbed.finish("echo")
        generator = LoadGenerator(
            testbed.sim,
            gateway,
            WorkloadSpec(name="w", rps=10),
            LatencyRecorder(),
            RngRegistry(0),
        )
        generator.start(1.0)
        with pytest.raises(RuntimeError):
            generator.start(1.0)

    def test_invalid_rps(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="w", rps=0)


class TestMixedWorkload:
    def test_two_streams_share_recorder(self):
        testbed = MeshTestbed()
        testbed.add_service("echo", echo_handler(), workers=32)
        gateway = testbed.finish("echo")
        mix = MixedWorkload(
            testbed.sim, gateway, MixConfig(rps=30.0), RngRegistry(0)
        )
        mix.start(2.0)
        testbed.sim.run(until=6.0)
        ls = mix.recorder.of("ls")
        li = mix.recorder.of("li")
        assert ls and li
        assert mix.issued == len(ls) + len(li)
        assert mix.completed == mix.issued

    def test_asymmetric_rates(self):
        testbed = MeshTestbed()
        testbed.add_service("echo", echo_handler(), workers=32)
        gateway = testbed.finish("echo")
        mix = MixedWorkload(
            testbed.sim,
            gateway,
            MixConfig(rps=50.0, li_rps=5.0),
            RngRegistry(0),
        )
        mix.start(3.0)
        testbed.sim.run(until=8.0)
        assert mix.ls.issued > mix.li.issued * 5
