"""The Envoy-style retry budget: limits, lifecycle guards, counters."""

import pytest

from repro.overload import RetryBudget


class TestLimit:
    def test_limit_scales_with_active_requests(self):
        budget = RetryBudget(ratio=0.2, min_retries=1)
        assert budget.limit == 1  # floor wins while idle
        for _ in range(10):
            budget.request_started()
        assert budget.limit == 2  # int(0.2 * 10)
        for _ in range(40):
            budget.request_started()
        assert budget.limit == 10

    def test_floor_keeps_retries_alive_at_low_load(self):
        # The min_retries floor is what lets a single failing request
        # still retry when it is the only thing in flight.
        budget = RetryBudget(ratio=0.2, min_retries=1)
        budget.request_started()
        assert budget.try_acquire()

    def test_zero_budget_denies_everything(self):
        budget = RetryBudget(ratio=0.0, min_retries=0)
        for _ in range(100):
            budget.request_started()
        assert not budget.try_acquire()
        assert budget.retries_denied == 1
        assert budget.retries_started == 0


class TestTokens:
    def test_acquire_until_limit_then_deny(self):
        budget = RetryBudget(ratio=0.5, min_retries=0)
        for _ in range(4):
            budget.request_started()
        assert budget.try_acquire()
        assert budget.try_acquire()
        assert not budget.try_acquire()  # limit = int(0.5 * 4) = 2
        assert budget.retries_started == 2
        assert budget.retries_denied == 1

    def test_release_frees_a_slot(self):
        budget = RetryBudget(ratio=0.5, min_retries=0)
        for _ in range(2):
            budget.request_started()
        assert budget.try_acquire()
        assert not budget.try_acquire()
        budget.release()
        assert budget.try_acquire()

    def test_release_without_acquire_raises(self):
        with pytest.raises(RuntimeError):
            RetryBudget().release()

    def test_finish_without_start_raises(self):
        with pytest.raises(RuntimeError):
            RetryBudget().request_finished()

    def test_request_lifecycle_balances(self):
        budget = RetryBudget()
        budget.request_started()
        budget.request_started()
        budget.request_finished()
        budget.request_finished()
        assert budget.active_requests == 0


class TestValidation:
    @pytest.mark.parametrize("kwargs", [{"ratio": -0.1}, {"ratio": 1.5}, {"min_retries": -1}])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            RetryBudget(**kwargs)
