"""The CoDel-style admission gate: state machine, priority ordering,
escalation stride, and the conservation counters."""

import pytest

from repro.core.priorities import Priority, set_priority
from repro.http import HttpRequest
from repro.overload import AdmissionGate, GateConfig, admission_class
from repro.overload.admission import PROTECTED_CLASS

#: A gate config with round numbers the tests can reason about:
#: target 100 ms, flips after 0.5 s sustained, escalates at 4x target.
CFG = GateConfig(
    target_s=0.1,
    interval_s=0.5,
    window_s=60.0,
    min_samples=5,
    ls_escalation=4.0,
    ls_stride_max=8,
)


def feed(gate, now, latency, n=10):
    for _ in range(n):
        gate.observe(now, latency)


class TestAdmissionClass:
    def test_provenance_high_is_protected(self):
        request = HttpRequest(service="s", headers={"x-workload": "batch"})
        set_priority(request, Priority.HIGH)
        assert admission_class(request) == "LS"

    def test_provenance_low_is_li(self):
        request = HttpRequest(service="s", headers={"x-workload": "interactive"})
        set_priority(request, Priority.LOW)
        assert admission_class(request) == "LI"

    def test_workload_header_fallback(self):
        assert (
            admission_class(HttpRequest(service="s", headers={"x-workload": "interactive"}))
            == "LS"
        )
        assert (
            admission_class(HttpRequest(service="s", headers={"x-workload": "batch"}))
            == "LI"
        )

    def test_unclassified_is_default(self):
        assert admission_class(HttpRequest(service="s")) == "default"


class TestStateMachine:
    def test_cold_start_never_sheds(self):
        gate = AdmissionGate(CFG)
        # Below min_samples the p99 estimate is 0.0: no evidence, no
        # shedding, however bad the few samples look.
        feed(gate, 0.0, 10.0, n=CFG.min_samples - 1)
        for i in range(50):
            assert gate.admit("LI", float(i))
        assert not gate.dropping

    def test_brief_spike_does_not_flip(self):
        gate = AdmissionGate(CFG)
        feed(gate, 0.0, 1.0)
        assert gate.admit("LI", 0.0)          # starts the violation clock
        assert gate.admit("LI", CFG.interval_s - 0.1)
        assert not gate.dropping

    def test_sustained_violation_sheds_unprotected(self):
        gate = AdmissionGate(CFG)
        feed(gate, 0.0, 1.0)
        assert gate.admit("LI", 0.0)
        assert not gate.admit("LI", CFG.interval_s)
        assert gate.dropping
        assert gate.drop_intervals == 1

    def test_protected_flows_while_dropping(self):
        gate = AdmissionGate(CFG)
        feed(gate, 0.0, 1.0)
        gate.admit("LI", 0.0)
        gate.admit("LI", CFG.interval_s)
        assert gate.dropping
        # LS sails through (stride 0 = unthinned); LI and unclassified shed.
        assert all(gate.admit(PROTECTED_CLASS, 0.6) for _ in range(20))
        assert not gate.admit("default", 0.6)

    def test_recovery_clears_dropping(self):
        gate = AdmissionGate(
            GateConfig(
                target_s=0.1, interval_s=0.5, window_s=1.0, min_samples=5
            )
        )
        feed(gate, 0.0, 1.0)
        gate.admit("LI", 0.0)
        gate.admit("LI", 0.5)
        assert gate.dropping
        # The bad samples age out of the 1 s window; with the estimate
        # back below target the gate reopens immediately (CoDel-style:
        # shedding stops the moment the standing queue is gone).
        assert gate.admit("LI", 5.0)
        assert not gate.dropping

    def test_rolling_p99_cold_and_warm(self):
        gate = AdmissionGate(CFG)
        assert gate.rolling_p99(0.0) == 0.0
        feed(gate, 0.0, 0.2)
        assert gate.rolling_p99(0.0) == pytest.approx(0.2, rel=0.2)


def escalated_gate():
    """A gate driven into dropping with p99 past ls_escalation x target."""
    gate = AdmissionGate(CFG)
    feed(gate, 0.0, 1.0)  # 1.0 s >> 4 x 0.1 s escalation threshold
    gate.admit("LI", 0.0)
    gate.admit("LI", 0.5)   # flips dropping, _last_adjust = 0.5
    return gate


class TestEscalation:
    def test_stride_starts_at_two(self):
        gate = escalated_gate()
        assert gate.stride == 0
        gate.admit("LI", 1.0)   # one full interval in dropping: escalate
        assert gate.stride == 2

    def test_stride_thins_one_in_stride(self):
        gate = escalated_gate()
        gate.admit("LI", 1.0)
        decisions = [gate.admit(PROTECTED_CLASS, 1.1) for _ in range(8)]
        assert decisions == [False, True] * 4

    def test_stride_doubles_to_cap(self):
        gate = escalated_gate()
        for step, expected in ((1.0, 2), (1.5, 4), (2.0, 8), (2.5, 8)):
            gate.admit("LI", step)
            assert gate.stride == expected

    def test_stride_backs_off_on_partial_recovery(self):
        gate = AdmissionGate(
            GateConfig(
                target_s=0.1, interval_s=0.5, window_s=2.0,
                min_samples=5, ls_escalation=4.0, ls_stride_max=8,
            )
        )
        feed(gate, 0.0, 1.0)
        gate.admit("LI", 0.0)
        for step in (0.5, 1.0, 1.5, 2.0):
            feed(gate, step, 1.0)   # keep the violation in-window
            gate.admit("LI", step)
        assert gate.stride == 8
        # p99 falls between target and the escalation threshold: the
        # stride halves per interval (8 -> 4 -> 2 -> 0) while dropping
        # state persists.
        strides = []
        for step in (4.5, 5.0, 5.5):
            feed(gate, step, 0.2)   # above target, below 4 x target
            gate.admit("LI", step)
            strides.append(gate.stride)
        assert strides == [4, 2, 0]
        assert gate.dropping

    def test_stride_resets_on_full_recovery(self):
        gate = escalated_gate()
        gate.admit("LI", 1.0)
        assert gate.stride == 2
        gate.admit("LI", 70.0)  # everything aged out of the window
        assert gate.stride == 0
        assert not gate.dropping


class TestOrderingAndAccounting:
    def test_would_shed_matches_admit_for_unprotected(self):
        gate = escalated_gate()
        assert gate.would_shed("LI")
        assert gate.would_shed("default")
        assert not gate.would_shed(PROTECTED_CLASS)  # stride still 0

    def test_shed_protected_implies_shed_unprotected(self):
        # The ordering invariant, point-checked (the property suite
        # fuzzes it): any state shedding LS is also shedding LI.
        gate = escalated_gate()
        gate.admit("LI", 1.0)   # stride = 2
        for _ in range(10):
            if gate.would_shed(PROTECTED_CLASS):
                assert gate.would_shed("LI")
            gate.admit(PROTECTED_CLASS, 1.1)

    def test_conservation_per_class(self):
        gate = AdmissionGate(CFG)
        feed(gate, 0.0, 1.0)
        for i in range(40):
            gate.admit(("LS", "LI", "default")[i % 3], 0.1 * i)
        totals = gate.totals()
        for cls, offered in totals["offered"].items():
            admitted = totals["admitted"].get(cls, 0)
            shed = totals["shed"].get(cls, 0)
            assert offered == admitted + shed


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_s": 0.0},
            {"interval_s": -1.0},
            {"window_s": 0.0},
            {"min_samples": 0},
            {"ls_escalation": 0.5},
            {"ls_stride_max": 1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            GateConfig(**kwargs)
