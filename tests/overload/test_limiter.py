"""The bounded leveling queue and the PriorityStore max-end helpers."""

import pytest

from repro.overload import QUEUED, REJECTED, LevelingQueue
from repro.sim import PriorityStore, Simulator


def by_rank(item):
    return item[0]


class TestPriorityStoreMaxEnd:
    def test_peek_max_empty_is_none(self):
        store = PriorityStore(Simulator())
        assert store.peek_max() is None

    def test_pop_max_empty_raises(self):
        store = PriorityStore(Simulator())
        with pytest.raises(IndexError):
            store.pop_max()

    def test_peek_max_is_worst_key(self):
        store = PriorityStore(Simulator(), key=by_rank)
        for item in [(1, "a"), (3, "c"), (2, "b")]:
            store.put(item)
        assert store.peek_max() == (3, "c")

    def test_max_end_ties_prefer_youngest(self):
        store = PriorityStore(Simulator(), key=by_rank)
        store.put((2, "old"))
        store.put((2, "young"))
        assert store.peek_max() == (2, "young")
        assert store.pop_max() == (2, "young")
        assert store.peek_max() == (2, "old")

    def test_pop_max_keeps_min_order_intact(self):
        sim = Simulator()
        store = PriorityStore(sim, key=by_rank)
        for item in [(4, "d"), (1, "a"), (3, "c"), (2, "b")]:
            store.put(item)
        assert store.pop_max() == (4, "d")
        drained = []

        def consumer():
            while len(store):
                drained.append((yield store.get()))

        sim.process(consumer())
        sim.run()
        assert drained == [(1, "a"), (2, "b"), (3, "c")]


class TestLevelingQueue:
    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            LevelingQueue(Simulator(), depth=0)

    def test_queues_below_depth(self):
        queue = LevelingQueue(Simulator(), depth=3, key=by_rank)
        for rank in (3, 1, 2):
            outcome, displaced = queue.offer((rank, f"r{rank}"))
            assert outcome == QUEUED
            assert displaced is None
        assert len(queue) == 3

    def test_full_rejects_equal_rank(self):
        # An equal-rank newcomer does NOT displace: FIFO within a class
        # means the incumbent keeps its place.
        queue = LevelingQueue(Simulator(), depth=1, key=by_rank)
        queue.offer((2, "incumbent"))
        outcome, displaced = queue.offer((2, "newcomer"))
        assert outcome == REJECTED
        assert displaced is None
        assert queue.items == [(2, "incumbent")]

    def test_full_rejects_worse_rank(self):
        queue = LevelingQueue(Simulator(), depth=1, key=by_rank)
        queue.offer((1, "good"))
        outcome, displaced = queue.offer((2, "worse"))
        assert outcome == REJECTED
        assert displaced is None

    def test_full_better_rank_displaces_worst(self):
        queue = LevelingQueue(Simulator(), depth=2, key=by_rank)
        queue.offer((2, "victim-old"))
        queue.offer((2, "victim-young"))
        outcome, displaced = queue.offer((1, "vip"))
        assert outcome == QUEUED
        # The youngest entry of the worst class makes room.
        assert displaced == (2, "victim-young")
        assert sorted(queue.items) == [(1, "vip"), (2, "victim-old")]

    def test_depth_bound_holds_under_churn(self):
        queue = LevelingQueue(Simulator(), depth=4, key=by_rank)
        for i in range(64):
            queue.offer((i % 7, i))
            assert len(queue) <= 4

    def test_conservation_counters(self):
        queue = LevelingQueue(Simulator(), depth=4, key=by_rank)
        for i in range(64):
            queue.offer((i % 7, i))
        assert queue.offered == 64
        assert queue.offered == queue.queued + queue.rejected
        assert len(queue) == queue.queued - queue.evicted

    def test_get_serves_best_first(self):
        sim = Simulator()
        queue = LevelingQueue(sim, depth=4, key=by_rank)
        for item in [(3, "c"), (1, "a"), (2, "b")]:
            queue.offer(item)
        served = []

        def consumer():
            while len(served) < 3:
                served.append((yield queue.get()))

        sim.process(consumer())
        sim.run()
        assert served == [(1, "a"), (2, "b"), (3, "c")]
