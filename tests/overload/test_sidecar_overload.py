"""Overload posture wired through the mesh: bounded leveling queues,
429 shedding, priority displacement, retry budgets, and the gate at
the gateway."""

from helpers import MeshTestbed, echo_handler

from repro.core.hooks import PriorityPolicyHooks
from repro.core.policy import CrossLayerPolicy
from repro.core.priorities import Priority, set_priority
from repro.http import Headers, HttpRequest, HttpStatus
from repro.mesh import MeshConfig, RetryPolicy
from repro.overload import GateConfig, OverloadConfig


def overload_config(**kwargs):
    defaults = dict(gate=None, concurrency=1, queue_depth=2, retry_budget_ratio=None)
    defaults.update(kwargs)
    return MeshConfig(
        retry=RetryPolicy(max_attempts=1),
        overload=OverloadConfig(**defaults),
    )


class TestLevelingQueue:
    def test_overflow_sheds_with_429(self):
        testbed = MeshTestbed(mesh_config=overload_config())
        testbed.add_service("slow", echo_handler(delay=0.5))
        gateway = testbed.finish("slow")
        events = [
            gateway.submit(HttpRequest(service=""), timeout=10.0)
            for _ in range(8)
        ]
        testbed.sim.run(until=testbed.sim.all_of(events))
        statuses = [event.value.status for event in events]
        shed = sum(1 for s in statuses if s == HttpStatus.TOO_MANY_REQUESTS)
        served = sum(1 for s in statuses if s == 200)
        # 1 executing + 2 queued; the 5 simultaneous equal-priority
        # latecomers are deterministically rejected (never displaced).
        assert served == 3
        assert shed == 5
        sidecar = [s for s in testbed.mesh.sidecars if s.service_name == "slow"][0]
        assert sidecar.requests_shed == shed
        assert testbed.mesh.telemetry.overload_rejections_total == shed

    def test_429_is_not_retried(self):
        # The coupling that stops shed load from re-entering: 429 is not
        # in RETRYABLE, so an aggressive retry policy must not amplify
        # rejected requests.
        config = overload_config()
        config.retry = RetryPolicy(max_attempts=4, backoff_base=0.001)
        testbed = MeshTestbed(mesh_config=config)
        testbed.add_service("slow", echo_handler(delay=0.5))
        gateway = testbed.finish("slow")
        events = [
            gateway.submit(HttpRequest(service=""), timeout=10.0)
            for _ in range(8)
        ]
        testbed.sim.run(until=testbed.sim.all_of(events))
        assert testbed.mesh.telemetry.retries_total == 0

    def test_queue_depth_bound_holds_during_flood(self):
        testbed = MeshTestbed(mesh_config=overload_config(queue_depth=2))
        testbed.add_service("slow", echo_handler(delay=0.1))
        gateway = testbed.finish("slow")
        sidecar = [s for s in testbed.mesh.sidecars if s.service_name == "slow"][0]
        high_water = {"depth": 0}

        def watch():
            while testbed.sim.now < 3.0:
                if sidecar._leveling is not None:
                    high_water["depth"] = max(
                        high_water["depth"], len(sidecar._leveling)
                    )
                yield testbed.sim.timeout(0.005)

        testbed.sim.process(watch())
        events = [
            gateway.submit(HttpRequest(service=""), timeout=10.0)
            for _ in range(30)
        ]
        testbed.sim.run(until=testbed.sim.all_of(events))
        assert 1 <= high_water["depth"] <= 2

    def test_high_priority_displaces_queued_low(self):
        testbed = MeshTestbed(mesh_config=overload_config(queue_depth=1))
        services = testbed.add_service("slow", echo_handler(delay=0.5))
        gateway = testbed.finish("slow")
        # Priority-aware queueing needs the cross-layer hooks on the
        # serving sidecar; the gateway keeps neutral hooks so the
        # x-priority headers set below survive ingress classification.
        for micro in services:
            micro.sidecar.policy = PriorityPolicyHooks(CrossLayerPolicy())

        def submit(priority):
            request = HttpRequest(service="")
            set_priority(request, priority)
            return gateway.submit(request, timeout=10.0)

        low_events = [submit(Priority.LOW) for _ in range(2)]

        def vip_later():
            yield testbed.sim.timeout(0.1)
            vip_events.append(submit(Priority.HIGH))

        vip_events = []
        testbed.sim.process(vip_later())
        testbed.sim.run(until=3.0)
        testbed.sim.run(until=testbed.sim.all_of(low_events + vip_events))
        # The queued LI request was displaced (429) by the later LS
        # arrival, which then completed normally.
        assert vip_events[0].value.status == 200
        low_statuses = sorted(e.value.status for e in low_events)
        assert low_statuses == [200, HttpStatus.TOO_MANY_REQUESTS]


class TestRetryBudget:
    def build(self, mesh_config):
        testbed = MeshTestbed(mesh_config=mesh_config)
        calls = {"n": 0}

        def flaky(ctx, request):
            # Deterministic 50% failure: odd calls 503, even calls OK.
            calls["n"] += 1
            if calls["n"] % 2 == 1:
                return request.reply(HttpStatus.SERVICE_UNAVAILABLE)
            if False:
                yield  # pragma: no cover - marks this as a generator
            return request.reply(body_size=100)

        testbed.add_service("flaky", flaky)
        return testbed, testbed.finish("flaky")

    def run_batch(self, testbed, gateway, n=10):
        events = [
            gateway.submit(HttpRequest(service=""), timeout=10.0)
            for _ in range(n)
        ]
        testbed.sim.run(until=testbed.sim.all_of(events))
        return [event.value.status for event in events]

    def test_without_budget_retries_amplify(self):
        config = MeshConfig(retry=RetryPolicy(max_attempts=3, backoff_base=0.001))
        testbed, gateway = self.build(config)
        statuses = self.run_batch(testbed, gateway)
        # Concurrent tries interleave through the alternating handler, so
        # an unlucky request can draw three failures; most recover.
        assert statuses.count(200) >= 7
        assert testbed.mesh.telemetry.retries_total >= 5

    def test_zero_budget_denies_every_retry(self):
        config = MeshConfig(
            retry=RetryPolicy(max_attempts=3, backoff_base=0.001),
            overload=OverloadConfig(
                gate=None,
                concurrency=None,
                retry_budget_ratio=0.0,
                retry_budget_min=0,
            ),
        )
        testbed, gateway = self.build(config)
        statuses = self.run_batch(testbed, gateway)
        telemetry = testbed.mesh.telemetry
        assert telemetry.retries_total == 0
        assert telemetry.retries_denied_total >= 5
        # Denied retries surface the original failure.
        assert HttpStatus.SERVICE_UNAVAILABLE in statuses


class TestGatewayGate:
    def build(self):
        config = MeshConfig(
            retry=RetryPolicy(max_attempts=1),
            overload=OverloadConfig(
                gate=GateConfig(
                    target_s=0.05, interval_s=0.1, window_s=30.0, min_samples=5
                ),
                concurrency=None,
                retry_budget_ratio=None,
            ),
        )
        testbed = MeshTestbed(mesh_config=config)
        testbed.add_service("quick", echo_handler(delay=0.001))
        return testbed, testbed.finish("quick")

    def test_gate_installed_from_mesh_config(self):
        _testbed, gateway = self.build()
        assert gateway.admission is not None
        assert gateway._shed_status == HttpStatus.TOO_MANY_REQUESTS

    def test_sustained_violation_sheds_batch_not_interactive(self):
        testbed, gateway = self.build()
        # Feed the gate a standing queue: 10 completions at 1 s each,
        # far past the 50 ms target.
        for _ in range(10):
            gateway.admission.observe(0.0, 1.0)
        first = gateway.submit(
            HttpRequest(service="", headers=Headers({"x-workload": "batch"}))
        )
        testbed.sim.run(until=first)      # starts the violation clock at t=0
        testbed.sim.run(until=0.2)        # past interval_s
        shed = gateway.submit(
            HttpRequest(service="", headers=Headers({"x-workload": "batch"}))
        )
        assert shed.value.status == HttpStatus.TOO_MANY_REQUESTS
        assert gateway.requests_shed == 1
        assert testbed.mesh.telemetry.requests_shed_total == 1
        # Protected class still flows through the same dropping gate.
        ls = gateway.submit(
            HttpRequest(service="", headers=Headers({"x-workload": "interactive"}))
        )
        testbed.sim.run(until=ls)
        assert ls.value.status == 200

    def test_shed_requests_never_reach_the_service(self):
        testbed, gateway = self.build()
        for _ in range(10):
            gateway.admission.observe(0.0, 1.0)
        first = gateway.submit(
            HttpRequest(service="", headers=Headers({"x-workload": "batch"}))
        )
        testbed.sim.run(until=first)
        testbed.sim.run(until=0.2)
        proxied_before = sum(
            s.requests_proxied for s in testbed.mesh.sidecars
        )
        shed = gateway.submit(
            HttpRequest(service="", headers=Headers({"x-workload": "batch"}))
        )
        testbed.sim.run(until=1.0)
        assert shed.value.status == HttpStatus.TOO_MANY_REQUESTS
        assert (
            sum(s.requests_proxied for s in testbed.mesh.sidecars)
            == proxied_before
        )

    def test_gate_conservation_counters(self):
        testbed, gateway = self.build()
        for _ in range(10):
            gateway.admission.observe(0.0, 1.0)
        events = []
        for i in range(6):
            events.append(
                gateway.submit(
                    HttpRequest(service="", headers=Headers({"x-workload": "batch"}))
                )
            )
            testbed.sim.run(until=0.1 * (i + 1))
        testbed.sim.run(until=testbed.sim.all_of(events))
        totals = gateway.admission.totals()
        offered = sum(totals["offered"].values())
        assert offered == 6
        assert offered == sum(totals["admitted"].values()) + sum(
            totals["shed"].values()
        )
        assert gateway.requests_admitted + gateway.requests_shed == offered
