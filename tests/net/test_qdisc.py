"""Qdisc semantics: FIFO drops, strict/weighted priority, DRR, shaping."""

import pytest

from repro.net import (
    DRRQdisc,
    FifoQdisc,
    Packet,
    PrioQdisc,
    TokenBucketQdisc,
    Tos,
    WeightedPrioQdisc,
    classify_by_dst,
    classify_by_tos,
)


def make_packet(size=1500, tos=Tos.NORMAL, dst="10.1.0.1", seq=0):
    return Packet(src="10.1.0.9", dst=dst, size=size, tos=tos, seq=seq)


class TestFifo:
    def test_fifo_order(self):
        q = FifoQdisc()
        for i in range(3):
            assert q.enqueue(make_packet(seq=i), now=0.0)
        assert [q.dequeue(0.0).seq for _ in range(3)] == [0, 1, 2]

    def test_empty_dequeue(self):
        assert FifoQdisc().dequeue(0.0) is None

    def test_packet_limit_drops(self):
        q = FifoQdisc(limit_packets=2)
        assert q.enqueue(make_packet(), 0.0)
        assert q.enqueue(make_packet(), 0.0)
        assert not q.enqueue(make_packet(), 0.0)
        assert q.stats.dropped == 1

    def test_byte_limit_drops(self):
        q = FifoQdisc(limit_bytes=3000)
        assert q.enqueue(make_packet(1500), 0.0)
        assert q.enqueue(make_packet(1500), 0.0)
        assert not q.enqueue(make_packet(1500), 0.0)
        assert q.stats.bytes_dropped == 1500

    def test_first_packet_always_accepted_even_if_oversized(self):
        q = FifoQdisc(limit_bytes=100)
        assert q.enqueue(make_packet(1500), 0.0)

    def test_backlog_accounting(self):
        q = FifoQdisc()
        q.enqueue(make_packet(1000), 0.0)
        q.enqueue(make_packet(500), 0.0)
        assert q.backlog_bytes == 1500
        q.dequeue(0.0)
        assert q.backlog_bytes == 500

    def test_next_ready_time(self):
        q = FifoQdisc()
        assert q.next_ready_time(5.0) == float("inf")
        q.enqueue(make_packet(), 5.0)
        assert q.next_ready_time(5.0) == 5.0

    def test_stats_counters(self):
        q = FifoQdisc(limit_packets=1)
        q.enqueue(make_packet(100), 0.0)
        q.enqueue(make_packet(100), 0.0)
        q.dequeue(0.0)
        assert q.stats.enqueued == 1
        assert q.stats.dropped == 1
        assert q.stats.dequeued == 1
        assert q.stats.bytes_sent == 100


class TestPrio:
    def test_strict_priority_order(self):
        q = PrioQdisc(classifier=classify_by_tos)
        q.enqueue(make_packet(tos=Tos.NORMAL, seq=1), 0.0)
        q.enqueue(make_packet(tos=Tos.HIGH, seq=2), 0.0)
        q.enqueue(make_packet(tos=Tos.NORMAL, seq=3), 0.0)
        q.enqueue(make_packet(tos=Tos.HIGH, seq=4), 0.0)
        order = [q.dequeue(0.0).seq for _ in range(4)]
        assert order == [2, 4, 1, 3]

    def test_classify_by_dst(self):
        classifier = classify_by_dst({"10.1.0.5"})
        q = PrioQdisc(classifier=classifier)
        q.enqueue(make_packet(dst="10.1.0.6", seq=1), 0.0)
        q.enqueue(make_packet(dst="10.1.0.5", seq=2), 0.0)
        assert q.dequeue(0.0).seq == 2

    def test_invalid_band_count(self):
        with pytest.raises(ValueError):
            PrioQdisc(bands=1)

    def test_invalid_classifier_result(self):
        q = PrioQdisc(bands=2, classifier=lambda p: 7)
        with pytest.raises(ValueError):
            q.enqueue(make_packet(), 0.0)

    def test_band_backlog(self):
        q = PrioQdisc()
        q.enqueue(make_packet(size=100, tos=Tos.HIGH), 0.0)
        q.enqueue(make_packet(size=200, tos=Tos.NORMAL), 0.0)
        assert q.band_backlog(0) == 100
        assert q.band_backlog(1) == 200


class TestWeightedPrio:
    def test_high_served_first_when_both_backlogged(self):
        q = WeightedPrioQdisc(high_share=0.95)
        q.enqueue(make_packet(tos=Tos.NORMAL, seq=1), 0.0)
        q.enqueue(make_packet(tos=Tos.HIGH, seq=2), 0.0)
        assert q.dequeue(0.0).seq == 2

    def test_work_conserving_low_only(self):
        q = WeightedPrioQdisc()
        q.enqueue(make_packet(tos=Tos.NORMAL, seq=1), 0.0)
        assert q.dequeue(0.0).seq == 1

    def test_service_split_converges_to_share(self):
        q = WeightedPrioQdisc(high_share=0.95, quantum_bytes=15_000)
        # Keep both bands continuously backlogged, count bytes served.
        high_bytes = low_bytes = 0
        for _ in range(4000):
            if q.high_backlog_bytes < 20 * 1500:
                for _ in range(30):
                    q.enqueue(make_packet(tos=Tos.HIGH), 0.0)
            if q.low_backlog_bytes < 20 * 1500:
                for _ in range(30):
                    q.enqueue(make_packet(tos=Tos.NORMAL), 0.0)
            packet = q.dequeue(0.0)
            if packet.tos == Tos.HIGH:
                high_bytes += packet.size
            else:
                low_bytes += packet.size
        share = high_bytes / (high_bytes + low_bytes)
        assert share == pytest.approx(0.95, abs=0.02)

    def test_low_not_starved(self):
        q = WeightedPrioQdisc(high_share=0.95)
        served_low = 0
        for _ in range(2000):
            if q.high_backlog_bytes < 10 * 1500:
                for _ in range(20):
                    q.enqueue(make_packet(tos=Tos.HIGH), 0.0)
            if q.low_backlog_bytes < 10 * 1500:
                for _ in range(20):
                    q.enqueue(make_packet(tos=Tos.NORMAL), 0.0)
            if q.dequeue(0.0).tos != Tos.HIGH:
                served_low += 1
        assert served_low > 0

    def test_invalid_share(self):
        with pytest.raises(ValueError):
            WeightedPrioQdisc(high_share=1.0)
        with pytest.raises(ValueError):
            WeightedPrioQdisc(high_share=0.3)


class TestDRR:
    @staticmethod
    def drain_with_backlog(q, rounds):
        """Dequeue ``rounds`` packets keeping every class backlogged."""
        counts = {Tos.HIGH: 0, Tos.NORMAL: 0}
        for _ in range(rounds):
            while q.class_length(0) < 10:
                q.enqueue(make_packet(tos=Tos.HIGH), 0.0)
            while q.class_length(1) < 10:
                q.enqueue(make_packet(tos=Tos.NORMAL), 0.0)
            counts[q.dequeue(0.0).tos] += 1
        return counts

    def test_equal_quanta_fair_split(self):
        q = DRRQdisc(classifier=lambda p: 0 if p.tos == Tos.HIGH else 1, quanta=[1500, 1500])
        counts = self.drain_with_backlog(q, 1000)
        ratio = counts[Tos.HIGH] / (counts[Tos.HIGH] + counts[Tos.NORMAL])
        assert ratio == pytest.approx(0.5, abs=0.05)

    def test_weighted_quanta(self):
        q = DRRQdisc(classifier=lambda p: 0 if p.tos == Tos.HIGH else 1, quanta=[3000, 1000])
        counts = self.drain_with_backlog(q, 2000)
        ratio = counts[Tos.HIGH] / (counts[Tos.HIGH] + counts[Tos.NORMAL])
        assert ratio == pytest.approx(0.75, abs=0.05)

    def test_empty(self):
        q = DRRQdisc(classifier=lambda p: 0, quanta=[1500])
        assert q.dequeue(0.0) is None

    def test_invalid_quanta(self):
        with pytest.raises(ValueError):
            DRRQdisc(classifier=lambda p: 0, quanta=[])
        with pytest.raises(ValueError):
            DRRQdisc(classifier=lambda p: 0, quanta=[0])


class TestTokenBucket:
    def test_burst_passes_immediately(self):
        q = TokenBucketQdisc(rate_bps=8_000, burst_bytes=3000)
        q.enqueue(make_packet(1500), 0.0)
        q.enqueue(make_packet(1500), 0.0)
        assert q.dequeue(0.0) is not None
        assert q.dequeue(0.0) is not None

    def test_shaping_delays_beyond_burst(self):
        # 8000 bps = 1000 bytes/s; burst covers the first packet only.
        q = TokenBucketQdisc(rate_bps=8_000, burst_bytes=1500)
        q.enqueue(make_packet(1500), 0.0)
        q.enqueue(make_packet(1500), 0.0)
        assert q.dequeue(0.0) is not None
        assert q.dequeue(0.0) is None  # no tokens yet
        ready = q.next_ready_time(0.0)
        assert ready == pytest.approx(1.5)  # 1500 bytes / 1000 Bps
        assert q.dequeue(ready) is not None

    def test_next_ready_time_empty(self):
        q = TokenBucketQdisc(rate_bps=1000, burst_bytes=1000)
        assert q.next_ready_time(0.0) == float("inf")

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TokenBucketQdisc(rate_bps=0, burst_bytes=100)
        with pytest.raises(ValueError):
            TokenBucketQdisc(rate_bps=100, burst_bytes=0)
