"""Interface/link transmission timing and host/switch forwarding."""

import pytest

from repro.net import FifoQdisc, Host, Interface, Link, Network, Packet, Tos
from repro.sim import Simulator


def build_pair(sim, rate_bps=8_000_000, delay=0.001):
    """Two hosts connected by one link; returns (net, a, b)."""
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.connect("a", "b", rate_bps=rate_bps, delay=delay)
    return net


class TestTransmission:
    def test_serialization_plus_propagation_delay(self):
        sim = Simulator()
        net = build_pair(sim, rate_bps=8_000_000, delay=0.001)
        arrivals = []
        net.bind("10.1.0.1", "a")
        net.bind("10.1.0.2", "b", handler=lambda p: arrivals.append(sim.now))
        net.build_routes()
        # 1000 bytes at 8 Mbps = 1 ms serialization + 1 ms propagation.
        net.send(Packet(src="10.1.0.1", dst="10.1.0.2", size=1000))
        sim.run()
        assert arrivals == [pytest.approx(0.002)]

    def test_back_to_back_packets_serialize(self):
        sim = Simulator()
        net = build_pair(sim, rate_bps=8_000_000, delay=0.0)
        arrivals = []
        net.bind("10.1.0.1", "a")
        net.bind("10.1.0.2", "b", handler=lambda p: arrivals.append(sim.now))
        net.build_routes()
        for _ in range(3):
            net.send(Packet(src="10.1.0.1", dst="10.1.0.2", size=1000))
        sim.run()
        assert arrivals == [pytest.approx(0.001), pytest.approx(0.002), pytest.approx(0.003)]

    def test_bidirectional_independent(self):
        sim = Simulator()
        net = build_pair(sim, rate_bps=8_000_000, delay=0.0)
        a_got, b_got = [], []
        net.bind("10.1.0.1", "a", handler=lambda p: a_got.append(sim.now))
        net.bind("10.1.0.2", "b", handler=lambda p: b_got.append(sim.now))
        net.build_routes()
        net.send(Packet(src="10.1.0.1", dst="10.1.0.2", size=1000))
        net.send(Packet(src="10.1.0.2", dst="10.1.0.1", size=1000))
        sim.run()
        # Directions do not share the serializer.
        assert a_got == [pytest.approx(0.001)]
        assert b_got == [pytest.approx(0.001)]

    def test_interface_telemetry(self):
        sim = Simulator()
        net = build_pair(sim)
        net.bind("10.1.0.1", "a")
        net.bind("10.1.0.2", "b", handler=lambda p: None)
        net.build_routes()
        net.send(Packet(src="10.1.0.1", dst="10.1.0.2", size=500))
        sim.run()
        iface = net.interface_between("a", "b")
        assert iface.bytes_transmitted == 500
        assert iface.packets_transmitted == 1
        assert iface.busy_time > 0

    def test_unconnected_interface_rejects(self):
        sim = Simulator()
        iface = Interface(sim, "lonely", rate_bps=1e9)
        with pytest.raises(RuntimeError):
            iface.enqueue(Packet(src="x", dst="y", size=100))

    def test_invalid_rate(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Interface(sim, "bad", rate_bps=0)

    def test_double_connect_rejected(self):
        sim = Simulator()
        a = Interface(sim, "a", 1e9)
        b = Interface(sim, "b", 1e9)
        c = Interface(sim, "c", 1e9)
        Link(sim, a, b)
        with pytest.raises(RuntimeError):
            Link(sim, a, c)

    def test_set_qdisc_migrates_backlog(self):
        sim = Simulator()
        net = build_pair(sim, rate_bps=8_000, delay=0.0)  # slow: 1 KBps
        arrivals = []
        net.bind("10.1.0.1", "a")
        net.bind("10.1.0.2", "b", handler=lambda p: arrivals.append(p.seq))
        net.build_routes()
        for i in range(5):
            net.send(Packet(src="10.1.0.1", dst="10.1.0.2", size=1000, seq=i))
        sim.run(until=0.5)  # first packet still in flight, rest queued
        iface = net.interface_between("a", "b")
        iface.set_qdisc(FifoQdisc())
        sim.run()
        assert arrivals == [0, 1, 2, 3, 4]


class TestHost:
    def test_local_delivery_bypasses_network(self):
        sim = Simulator()
        net = Network(sim)
        net.add_host("a")
        got = []
        net.bind("10.1.0.1", "a", handler=lambda p: got.append(sim.now))
        net.bind("10.1.0.9", "a")
        host = net.devices["a"]
        host.send(Packet(src="10.1.0.9", dst="10.1.0.1", size=10_000_000))
        sim.run()
        assert got == [0.0]  # no serialization delay on localhost

    def test_no_route_raises(self):
        sim = Simulator()
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        net.add_host("c")
        net.connect("a", "b")
        net.connect("a", "c")
        net.bind("10.1.0.1", "a")
        host = net.devices["a"]
        # Two interfaces, no routes computed -> ambiguous.
        with pytest.raises(RuntimeError):
            host.send(Packet(src="10.1.0.1", dst="10.9.9.9", size=100))

    def test_unbound_packet_counted_dropped(self):
        sim = Simulator()
        net = build_pair(sim)
        net.bind("10.1.0.1", "a")
        net.bind("10.1.0.2", "b", handler=lambda p: None)
        net.build_routes()
        # b never bound 10.1.0.99 but routing delivers by host address; send
        # to an address bound to b's host without a handler.
        net.bind("10.1.0.99", "b")
        net.build_routes()
        net.send(Packet(src="10.1.0.1", dst="10.1.0.99", size=100))
        sim.run()
        host = net.devices["b"]
        assert host.packets_dropped_no_handler == 1


class TestSwitchRouting:
    def build_star(self, sim):
        """Three hosts around one switch."""
        net = Network(sim)
        for name in ("h1", "h2", "h3"):
            net.add_host(name)
        net.add_switch("sw")
        for name in ("h1", "h2", "h3"):
            net.connect(name, "sw", rate_bps=1e9, delay=0.0001)
        return net

    def test_forwarding_through_switch(self):
        sim = Simulator()
        net = self.build_star(sim)
        got = []
        net.bind("10.1.0.1", "h1")
        net.bind("10.1.0.2", "h2", handler=lambda p: got.append(p.packet_id))
        net.bind("10.1.0.3", "h3")
        net.build_routes()
        net.send(Packet(src="10.1.0.1", dst="10.1.0.2", size=100))
        sim.run()
        assert len(got) == 1
        assert net.devices["sw"].packets_forwarded == 1

    def test_hop_count(self):
        sim = Simulator()
        net = self.build_star(sim)
        hops = []
        net.bind("10.1.0.1", "h1")
        net.bind("10.1.0.2", "h2", handler=lambda p: hops.append(p.hops))
        net.build_routes()
        net.send(Packet(src="10.1.0.1", dst="10.1.0.2", size=100))
        sim.run()
        assert hops == [2]  # h1->sw, sw->h2

    def test_no_route_dropped(self):
        sim = Simulator()
        net = self.build_star(sim)
        net.bind("10.1.0.1", "h1")
        net.bind("10.1.0.2", "h2", handler=lambda p: None)
        net.build_routes()
        switch = net.devices["sw"]
        # Inject a packet for an address the switch has no route for.
        iface = net.interface_between("h1", "sw")
        switch.receive(Packet(src="10.1.0.1", dst="10.250.0.1", size=100), iface)
        assert switch.packets_dropped_no_route == 1

    def test_tos_route_override(self):
        sim = Simulator()
        net = Network(sim)
        for name in ("src", "dst"):
            net.add_host(name)
        for name in ("s1", "s2", "s3"):
            net.add_switch(name)
        # Two parallel paths: src-s1-s2-dst and src-s1-s3-dst.
        net.connect("src", "s1")
        net.connect("s1", "s2")
        net.connect("s1", "s3")
        net.connect("s2", "dst")
        net.connect("s3", "dst")
        got = []
        net.bind("10.1.0.1", "src")
        net.bind("10.1.0.2", "dst", handler=lambda p: got.append(p.tos))
        net.build_routes()
        # Steer HIGH traffic via the longer alternate path s1->s3->dst.
        net.install_path(["src", "s1", "s3", "dst"], "10.1.0.2", tos=Tos.HIGH)
        net.send(Packet(src="10.1.0.1", dst="10.1.0.2", size=100, tos=Tos.HIGH))
        net.send(Packet(src="10.1.0.1", dst="10.1.0.2", size=100, tos=Tos.NORMAL))
        sim.run()
        assert sorted(got) == [Tos.HIGH, Tos.NORMAL]
        s3 = net.devices["s3"]
        assert s3.packets_forwarded == 1  # only the HIGH packet took s3


class TestNetworkConstruction:
    def test_duplicate_device_rejected(self):
        sim = Simulator()
        net = Network(sim)
        net.add_host("x")
        with pytest.raises(ValueError):
            net.add_host("x")
        with pytest.raises(ValueError):
            net.add_switch("x")

    def test_connect_unknown_device(self):
        sim = Simulator()
        net = Network(sim)
        net.add_host("a")
        with pytest.raises(KeyError):
            net.connect("a", "ghost")

    def test_double_connect_rejected(self):
        sim = Simulator()
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        net.connect("a", "b")
        with pytest.raises(ValueError):
            net.connect("a", "b")

    def test_asymmetric_rates(self):
        sim = Simulator()
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        net.connect("a", "b", rate_a_bps=1e9, rate_b_bps=1e6)
        assert net.interface_between("a", "b").rate_bps == 1e9
        assert net.interface_between("b", "a").rate_bps == 1e6

    def test_unknown_source_send(self):
        sim = Simulator()
        net = Network(sim)
        with pytest.raises(KeyError):
            net.send(Packet(src="1.2.3.4", dst="5.6.7.8", size=1))

    def test_bind_to_switch_rejected(self):
        sim = Simulator()
        net = Network(sim)
        net.add_switch("sw")
        with pytest.raises(KeyError):
            net.bind("10.0.0.1", "sw")
