"""Interface details: shaping on the wire, telemetry, qdisc swaps."""

import pytest

from repro.net import FifoQdisc, Network, Packet, TokenBucketQdisc
from repro.sim import Simulator


def one_way_net(sim, rate_bps=8_000_000, delay=0.0, qdisc_a=None):
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.connect("a", "b", rate_bps=rate_bps, delay=delay, qdisc_a=qdisc_a)
    arrivals = []
    net.bind("10.0.0.1", "a")
    net.bind("10.0.0.2", "b", handler=lambda p: arrivals.append((sim.now, p)))
    net.build_routes()
    return net, arrivals


class TestShapedInterface:
    def test_token_bucket_paces_the_wire(self):
        sim = Simulator()
        # Line rate 8 Mbps but shaped to 0.8 Mbps = 100 KB/s.
        shaper = TokenBucketQdisc(rate_bps=800_000, burst_bytes=10_000)
        net, arrivals = one_way_net(sim, rate_bps=8_000_000, qdisc_a=shaper)
        for i in range(10):
            net.send(Packet(src="10.0.0.1", dst="10.0.0.2", size=10_000, seq=i))
        sim.run()
        assert len(arrivals) == 10
        # First packet rides the burst; the rest pace at 10 KB per 100 ms.
        total_time = arrivals[-1][0] - arrivals[0][0]
        assert total_time == pytest.approx(0.9, rel=0.1)

    def test_shaped_idle_then_burst(self):
        sim = Simulator()
        shaper = TokenBucketQdisc(rate_bps=800_000, burst_bytes=20_000)
        net, arrivals = one_way_net(sim, qdisc_a=shaper)
        net.send(Packet(src="10.0.0.1", dst="10.0.0.2", size=10_000))
        sim.run()
        # Long idle refills the bucket; a later burst passes immediately.
        first_gap_start = sim.now
        sim.run(until=first_gap_start + 1.0)
        net.send(Packet(src="10.0.0.1", dst="10.0.0.2", size=10_000))
        net.send(Packet(src="10.0.0.1", dst="10.0.0.2", size=10_000))
        sim.run()
        burst_span = arrivals[-1][0] - arrivals[-2][0]
        assert burst_span < 0.05  # both fit in the refilled burst


class TestInterfaceTelemetry:
    def test_busy_time_matches_serialization(self):
        sim = Simulator()
        net, arrivals = one_way_net(sim, rate_bps=8_000_000)
        for _ in range(4):
            net.send(Packet(src="10.0.0.1", dst="10.0.0.2", size=1000))
        sim.run()
        iface = net.interface_between("a", "b")
        # 4 packets x 1000 B x 8 / 8 Mbps = 4 ms.
        assert iface.busy_time == pytest.approx(0.004)
        assert iface.packets_transmitted == 4
        assert iface.utilization_window_bytes == 4000

    def test_swap_qdisc_mid_transmit_keeps_packets(self):
        sim = Simulator()
        net, arrivals = one_way_net(sim, rate_bps=8_000)  # 1 KB/s, slow
        for i in range(3):
            net.send(Packet(src="10.0.0.1", dst="10.0.0.2", size=1000, seq=i))
        sim.run(until=0.5)  # mid-first-packet
        iface = net.interface_between("a", "b")
        iface.set_qdisc(FifoQdisc(limit_bytes=100_000))
        sim.run()
        assert sorted(p.seq for _t, p in arrivals) == [0, 1, 2]
