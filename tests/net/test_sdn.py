"""SDN controller: monitoring and priority-aware steering."""

import pytest

from repro.net import LinkMonitor, Network, Packet, SdnController, Tos
from repro.sim import Simulator


def two_path_network(sim):
    """src and dst hosts joined via two parallel switches s1/s2."""
    net = Network(sim)
    net.add_host("src")
    net.add_host("dst")
    net.add_switch("sw-src")
    net.add_switch("sw-dst")
    net.add_switch("s1")
    net.add_switch("s2")
    net.connect("src", "sw-src", rate_bps=1e9)
    net.connect("dst", "sw-dst", rate_bps=1e9)
    net.connect("sw-src", "s1", rate_bps=1e8)
    net.connect("sw-src", "s2", rate_bps=1e8)
    net.connect("s1", "sw-dst", rate_bps=1e8)
    net.connect("s2", "sw-dst", rate_bps=1e8)
    net.bind("10.0.0.1", "src")
    net.bind("10.0.0.2", "dst", handler=lambda p: None)
    net.build_routes()
    return net


class TestLinkMonitor:
    def test_utilization_sampling(self):
        sim = Simulator()
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        net.connect("a", "b", rate_bps=8e6)  # 1 MB/s
        net.bind("10.0.0.1", "a")
        net.bind("10.0.0.2", "b", handler=lambda p: None)
        net.build_routes()
        monitor = LinkMonitor(sim, net, interval=0.1)
        monitor.start()

        def sender(sim):
            while sim.now < 1.0:
                net.send(Packet(src="10.0.0.1", dst="10.0.0.2", size=10_000))
                yield sim.timeout(0.01)  # 1 MB/s offered -> full utilization

        sim.process(sender(sim))
        sim.run(until=1.0)
        iface = net.interface_between("a", "b")
        utilization = monitor.utilization(iface.name)
        assert utilization == pytest.approx(1.0, abs=0.15)
        # Reverse direction idle.
        reverse = net.interface_between("b", "a")
        assert monitor.utilization(reverse.name) == 0.0

    def test_fluid_transfer_visible_in_utilization(self):
        """Regression: the hybrid transport's fluid fast path bypasses
        packet serialization, so a monitor reading only
        ``bytes_transmitted`` reports an idle link while fluid flows
        saturate it.  The sampler must add ``fluid_bytes_transmitted``."""
        sim = Simulator()
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        net.connect("a", "b", rate_bps=8e6)  # 1 MB/s
        net.bind("10.0.0.1", "a")
        net.bind("10.0.0.2", "b", handler=lambda p: None)
        net.build_routes()
        monitor = LinkMonitor(sim, net, interval=0.1)
        monitor.start()
        iface = net.interface_between("a", "b")

        def fluid_sender(sim):
            yield sim.timeout(0.05)
            # 50 kB fluid-mode transfer: 0.4 Mb against the 0.8 Mb the
            # link can carry per interval -> utilization 0.5.
            iface.fluid_register(50_000)

        sim.process(fluid_sender(sim))
        sim.run(until=0.15)
        assert iface.bytes_transmitted == 0  # nothing went packet-mode
        assert monitor.utilization(iface.name) == pytest.approx(0.5)

    def test_invalid_interval(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            LinkMonitor(sim, Network(sim), interval=0)

    def test_latest_none_before_sampling(self):
        sim = Simulator()
        net = Network(sim)
        monitor = LinkMonitor(sim, net)
        assert monitor.latest("nope") is None


class TestSdnController:
    def test_candidate_paths_found(self):
        sim = Simulator()
        net = two_path_network(sim)
        controller = SdnController(sim, net)
        paths = controller.candidate_paths("sw-src", "dst", k=4)
        assert len(paths) >= 2
        middles = {tuple(p[1:-2]) for p in paths}
        assert len(middles) >= 2  # genuinely disjoint alternatives

    def test_steer_separates_classes(self):
        sim = Simulator()
        net = two_path_network(sim)
        controller = SdnController(sim, net)
        high_path = controller.steer("sw-src", "10.0.0.2", Tos.HIGH)
        low_path = controller.steer("sw-src", "10.0.0.2", Tos.SCAVENGER)
        # With no utilization data both paths score equal; HIGH takes the
        # first candidate and SCAVENGER the last -> disjoint spines.
        assert high_path != low_path
        assert len(controller.installed_paths) == 2

    def test_steer_unknown_destination(self):
        sim = Simulator()
        net = two_path_network(sim)
        controller = SdnController(sim, net)
        with pytest.raises(KeyError):
            controller.steer("sw-src", "99.99.99.99", Tos.HIGH)

    def test_steered_traffic_takes_installed_path(self):
        sim = Simulator()
        net = two_path_network(sim)
        controller = SdnController(sim, net)
        high_path = controller.steer("sw-src", "10.0.0.2", Tos.HIGH)
        low_path = controller.steer("sw-src", "10.0.0.2", Tos.SCAVENGER)
        high_spine = [d for d in high_path if d in ("s1", "s2")][0]
        low_spine = [d for d in low_path if d in ("s1", "s2")][0]
        net.send(Packet(src="10.0.0.1", dst="10.0.0.2", size=100, tos=Tos.HIGH))
        net.send(Packet(src="10.0.0.1", dst="10.0.0.2", size=100, tos=Tos.SCAVENGER))
        sim.run()
        assert net.devices[high_spine].packets_forwarded >= 1
        assert net.devices[low_spine].packets_forwarded >= 1

    def test_path_utilization_is_bottleneck_view(self):
        sim = Simulator()
        net = two_path_network(sim)
        controller = SdnController(sim, net)
        # No samples yet -> utilization 0.
        assert controller.path_utilization(["src", "sw-src", "s1"]) == 0.0

    def test_congested_interfaces_empty_when_idle(self):
        sim = Simulator()
        net = two_path_network(sim)
        controller = SdnController(sim, net)
        assert controller.congested_interfaces() == []
