"""Address allocation."""

import pytest

from repro.net import AddressExhausted, AddressPlan, SubnetAllocator


def test_sequential_allocation():
    alloc = SubnetAllocator("10.1")
    assert alloc.allocate("pod-a") == "10.1.0.1"
    assert alloc.allocate("pod-b") == "10.1.0.2"


def test_same_owner_same_address():
    alloc = SubnetAllocator("10.1")
    first = alloc.allocate("pod-a")
    assert alloc.allocate("pod-a") == first


def test_addresses_unique():
    alloc = SubnetAllocator("10.1")
    addresses = {alloc.allocate(f"pod-{i}") for i in range(1000)}
    assert len(addresses) == 1000


def test_rollover_to_next_octet():
    alloc = SubnetAllocator("10.1")
    for i in range(254):
        alloc.allocate(f"pod-{i}")
    assert alloc.allocate("pod-254") == "10.1.0.255"
    assert alloc.allocate("pod-255") == "10.1.1.1"


def test_invalid_prefix():
    with pytest.raises(ValueError):
        SubnetAllocator("10.1.2")
    with pytest.raises(ValueError):
        SubnetAllocator("300.1")


def test_owner_lookup():
    alloc = SubnetAllocator("10.1")
    address = alloc.allocate("pod-a")
    assert alloc.owner_of(address) == "pod-a"
    assert alloc.owner_of("10.1.99.99") is None


def test_exhaustion():
    alloc = SubnetAllocator("10.1")
    alloc._next = 256 * 255  # jump near the end
    with pytest.raises(AddressExhausted):
        alloc.allocate("overflow")


def test_address_plan_subnets_disjoint():
    plan = AddressPlan()
    node = plan.nodes.allocate("node-1")
    pod = plan.pods.allocate("pod-1")
    service = plan.services.allocate("svc-1")
    assert node.startswith("10.0.")
    assert pod.startswith("10.1.")
    assert service.startswith("10.96.")
