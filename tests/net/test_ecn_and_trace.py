"""ECN marking/reaction and packet tracing."""

import pytest

from repro.net import (
    DELIVER,
    FORWARD,
    FifoQdisc,
    Network,
    Packet,
    PacketTracer,
    SEND,
    Tos,
)
from repro.sim import Simulator
from repro.transport import TransportConfig, TransportStack


class TestEcnMarking:
    def test_marks_above_threshold(self):
        q = FifoQdisc(ecn_threshold_bytes=3000)
        first = Packet(src="a", dst="b", size=1500)
        second = Packet(src="a", dst="b", size=1500)
        third = Packet(src="a", dst="b", size=1500)
        q.enqueue(first, 0.0)
        q.enqueue(second, 0.0)   # backlog 1500 < 3000: unmarked
        q.enqueue(third, 0.0)    # backlog 3000 >= 3000: marked
        assert not first.ecn and not second.ecn
        assert third.ecn
        assert q.ecn_marked == 1

    def test_no_threshold_no_marking(self):
        q = FifoQdisc()
        for _ in range(100):
            packet = Packet(src="a", dst="b", size=1500)
            q.enqueue(packet, 0.0)
            assert not packet.ecn

    def test_weighted_prio_bands_can_mark(self):
        from repro.net import WeightedPrioQdisc

        q = WeightedPrioQdisc(ecn_threshold_bytes=1500)
        first = Packet(src="a", dst="b", size=1500)
        second = Packet(src="a", dst="b", size=1500)
        q.enqueue(first, 0.0)
        q.enqueue(second, 0.0)  # low-band backlog now over threshold
        assert not first.ecn
        assert second.ecn

    def test_prio_bands_can_mark(self):
        from repro.net import PrioQdisc, Tos

        q = PrioQdisc(ecn_threshold_bytes=1500)
        first = Packet(src="a", dst="b", size=1500, tos=Tos.HIGH)
        second = Packet(src="a", dst="b", size=1500, tos=Tos.HIGH)
        q.enqueue(first, 0.0)
        q.enqueue(second, 0.0)
        assert second.ecn and not first.ecn


class TestEcnReaction:
    def build(self, ecn_enabled=True):
        sim = Simulator()
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        # Slow link with an ECN threshold well below the backlog a
        # slow-started sender creates.
        net.connect(
            "a", "b",
            rate_bps=4_000_000, delay=0.002,
            qdisc_a=FifoQdisc(ecn_threshold_bytes=20_000),
        )
        config = TransportConfig(mss=1460, ecn_enabled=ecn_enabled)
        src = TransportStack(sim, net, "a", "10.1.0.1", config=config)
        dst = TransportStack(sim, net, "b", "10.1.0.2", config=config)
        net.build_routes()
        done = []

        def on_accept(conn):
            def serve():
                message, _size = yield conn.receive()
                done.append(sim.now)

            sim.process(serve())

        dst.listen(80, on_accept)
        conn = src.connect("10.1.0.2", 80)

        def client(sim):
            yield conn.established
            conn.send("bulk", 600_000)

        sim.process(client(sim))
        sim.run(until=120.0)
        assert done, "transfer did not finish"
        iface = net.interface_between("a", "b")
        return conn, iface

    def test_sender_reduces_on_ece(self):
        conn, _ = self.build(ecn_enabled=True)
        assert conn.ecn_reductions > 0

    def test_reaction_bounded_once_per_rtt(self):
        conn, _ = self.build(ecn_enabled=True)
        # Far fewer reductions than marked packets (per-RTT guard).
        assert conn.ecn_reductions < 50

    def test_ecn_keeps_queue_shorter(self):
        _, iface_with = self.build(ecn_enabled=True)
        _, iface_without = self.build(ecn_enabled=False)
        # With reaction enabled the cwnd backs off before filling the
        # buffer, so fewer bytes ever sat marked in the queue.
        assert iface_with.qdisc.ecn_marked < iface_without.qdisc.ecn_marked

    def test_disabled_reaction_ignores_marks(self):
        conn, iface = self.build(ecn_enabled=False)
        assert iface.qdisc.ecn_marked > 0
        assert conn.ecn_reductions == 0


class TestPacketTracer:
    def build_star(self):
        sim = Simulator()
        net = Network(sim)
        net.add_host("h1")
        net.add_host("h2")
        net.add_switch("sw")
        net.connect("h1", "sw")
        net.connect("sw", "h2")
        net.bind("10.0.0.1", "h1")
        net.bind("10.0.0.2", "h2", handler=lambda p: None)
        net.build_routes()
        return sim, net

    def test_full_journey_recorded(self):
        sim, net = self.build_star()
        tracer = PacketTracer()
        net.attach_tracer(tracer)
        packet = Packet(src="10.0.0.1", dst="10.0.0.2", size=100)
        net.send(packet)
        sim.run()
        journey = tracer.journey(packet.packet_id)
        assert [e.kind for e in journey] == [SEND, FORWARD, DELIVER]
        assert [e.where for e in journey] == ["h1", "sw", "h2"]
        assert tracer.one_way_delay(packet.packet_id) > 0

    def test_filters(self):
        sim, net = self.build_star()
        tracer = PacketTracer(tos=Tos.HIGH, kinds=(DELIVER,))
        net.attach_tracer(tracer)
        net.send(Packet(src="10.0.0.1", dst="10.0.0.2", size=100, tos=Tos.HIGH))
        net.send(Packet(src="10.0.0.1", dst="10.0.0.2", size=100, tos=Tos.NORMAL))
        sim.run()
        assert len(tracer) == 1
        assert tracer.events[0].kind == DELIVER
        assert tracer.events[0].tos == Tos.HIGH

    def test_max_events_cap(self):
        sim, net = self.build_star()
        tracer = PacketTracer(max_events=2)
        net.attach_tracer(tracer)
        for _ in range(3):
            net.send(Packet(src="10.0.0.1", dst="10.0.0.2", size=100))
        sim.run()
        assert len(tracer) == 2
        assert tracer.suppressed > 0

    def test_detach_stops_recording(self):
        sim, net = self.build_star()
        tracer = PacketTracer()
        net.attach_tracer(tracer)
        net.send(Packet(src="10.0.0.1", dst="10.0.0.2", size=100))
        sim.run()
        recorded = len(tracer)
        net.detach_tracer(tracer)
        net.send(Packet(src="10.0.0.1", dst="10.0.0.2", size=100))
        sim.run()
        assert len(tracer) == recorded

    def test_no_tracer_no_overhead_path(self):
        sim, net = self.build_star()
        host = net.devices["h1"]
        assert host.tap is None  # hot path untouched by default

    def test_predicate_filter(self):
        sim, net = self.build_star()
        tracer = PacketTracer(predicate=lambda p: p.size > 500)
        net.attach_tracer(tracer)
        net.send(Packet(src="10.0.0.1", dst="10.0.0.2", size=100))
        net.send(Packet(src="10.0.0.1", dst="10.0.0.2", size=1000))
        sim.run()
        assert all(e.size == 1000 for e in tracer.events)
        assert len(tracer.of_kind(SEND)) == 1
