"""Application framework: contexts, handlers, the declarative builder."""

import pytest

from helpers import MeshTestbed

from repro.apps import (
    ServiceSpec,
    WORKLOAD_BATCH,
    WORKLOAD_HEADER,
    is_batch,
)
from repro.http import HttpRequest, PRIORITY


def submit(testbed, gateway, path="/", **headers):
    request = HttpRequest(service="", path=path)
    for key, value in headers.items():
        request.headers[key.replace("_", "-")] = value
    return request, testbed.sim.run(until=gateway.submit(request))


class TestAppBuilder:
    def test_call_tree_aggregates_sizes(self):
        testbed = MeshTestbed()
        testbed.build_app(
            [
                ServiceSpec(name="root", children=("left", "right"),
                            base_response_bytes=100),
                ServiceSpec(name="left", base_response_bytes=200),
                ServiceSpec(name="right", base_response_bytes=300),
            ]
        )
        gateway = testbed.finish("root")
        _, response = submit(testbed, gateway)
        assert response.status == 200
        assert response.body_size == 600

    def test_sequential_children(self):
        testbed = MeshTestbed()
        testbed.build_app(
            [
                ServiceSpec(
                    name="root",
                    children=("a", "b"),
                    sequential_children=True,
                    base_response_bytes=10,
                ),
                ServiceSpec(name="a", base_response_bytes=1),
                ServiceSpec(name="b", base_response_bytes=2),
            ]
        )
        gateway = testbed.finish("root")
        _, response = submit(testbed, gateway)
        assert response.body_size == 13

    def test_batch_multiplier_applies_where_marked(self):
        testbed = MeshTestbed()
        testbed.build_app(
            [
                ServiceSpec(name="root", children=("data",), base_response_bytes=100),
                ServiceSpec(
                    name="data", base_response_bytes=1000, batch_scales_response=True
                ),
            ],
            batch_multiplier=50,
        )
        gateway = testbed.finish("root")
        _, interactive = submit(testbed, gateway)
        _, batch = submit(
            testbed, gateway, **{WORKLOAD_HEADER.replace("-", "_"): WORKLOAD_BATCH}
        )
        assert interactive.body_size == 1100
        assert batch.body_size == 50_100

    def test_unknown_child_rejected(self):
        testbed = MeshTestbed()
        with pytest.raises(ValueError):
            testbed.build_app([ServiceSpec(name="root", children=("ghost",))])

    def test_failure_rate_injects_503(self):
        testbed = MeshTestbed()
        testbed.build_app([ServiceSpec(name="flaky", failure_rate=1.0)])
        gateway = testbed.finish("flaky")
        _, response = submit(testbed, gateway)
        # Every attempt fails -> the retry budget exhausts into a 503.
        assert response.status == 503

    def test_failed_child_becomes_502(self):
        testbed = MeshTestbed()
        testbed.build_app(
            [
                ServiceSpec(name="root", children=("dead",)),
                ServiceSpec(name="dead", failure_rate=1.0),
            ]
        )
        gateway = testbed.finish("root")
        _, response = submit(testbed, gateway)
        assert response.status == 502

    def test_versions_create_parallel_deployments(self):
        testbed = MeshTestbed()
        testbed.build_app(
            [ServiceSpec(name="multi", versions=("v1", "v2"), replicas_per_version=2)]
        )
        service = testbed.cluster.dns.resolve("multi")
        assert len(service.endpoints) == 4
        assert len(service.subset({"version": "v1"})) == 2


class TestProvenancePropagation:
    def test_priority_header_reaches_leaves(self):
        """§4.3 item 2: the sidecar/app propagate the priority header
        onto internal requests keyed by the shared request id."""
        seen = []

        def leaf_handler(ctx, request):
            seen.append(
                (
                    request.headers.get(PRIORITY),
                    request.headers.get("x-request-id"),
                )
            )
            yield ctx.sleep(0.001)
            return request.reply(body_size=10)

        def root_handler(ctx, request):
            response = yield ctx.call("leaf")
            return request.reply(body_size=response.body_size)

        testbed = MeshTestbed()
        testbed.add_service("leaf", leaf_handler)
        testbed.add_service("root", root_handler)
        gateway = testbed.finish("root")
        request, _ = submit(testbed, gateway, x_priority="high")
        assert len(seen) == 1
        leaf_priority, leaf_request_id = seen[0]
        assert leaf_priority == "high"
        assert leaf_request_id == request.headers["x-request-id"]

    def test_workload_header_propagates(self):
        seen = []

        def leaf_handler(ctx, request):
            seen.append(is_batch(request))
            yield ctx.sleep(0.001)
            return request.reply(body_size=10)

        def root_handler(ctx, request):
            yield ctx.call("leaf")
            return request.reply(body_size=1)

        testbed = MeshTestbed()
        testbed.add_service("leaf", leaf_handler)
        testbed.add_service("root", root_handler)
        gateway = testbed.finish("root")
        submit(testbed, gateway, **{WORKLOAD_HEADER.replace("-", "_"): WORKLOAD_BATCH})
        assert seen == [True]


class TestAppContext:
    def test_compute_respects_worker_limit(self):
        """Two concurrent requests on a single-worker pod serialize."""
        finish_times = []

        def busy(ctx, request):
            yield from ctx.compute(0.1)
            finish_times.append(ctx.sim.now)
            return request.reply(body_size=1)

        testbed = MeshTestbed()
        testbed.add_service("busy", busy, workers=1)
        gateway = testbed.finish("busy")
        events = [gateway.submit(HttpRequest(service="")) for _ in range(2)]
        testbed.sim.run(until=testbed.sim.all_of(events))
        assert finish_times[1] - finish_times[0] >= 0.1

    def test_handler_must_return_response(self):
        def bad(ctx, request):
            yield ctx.sleep(0.001)
            return "not a response"

        testbed = MeshTestbed()
        testbed.add_service("bad", bad)
        gateway = testbed.finish("bad")
        _, response = submit(testbed, gateway)
        assert response.status == 500  # TypeError surfaced as app error
