"""The e-library application and the synthetic DAG generator."""

import pytest

from helpers import MeshTestbed

from repro.apps import (
    DETAILS,
    DagConfig,
    ELibraryConfig,
    FRONTEND,
    RATINGS,
    REVIEWS,
    WORKLOAD_BATCH,
    WORKLOAD_HEADER,
    build_elibrary,
    dag_root,
    generate_dag_specs,
)
from repro.http import HttpRequest
from repro.util.units import Gbps


class TestELibrary:
    def build(self, config=None):
        testbed = MeshTestbed()
        build_elibrary(
            testbed.sim,
            testbed.cluster,
            testbed.mesh,
            config or ELibraryConfig(),
            rng_registry=testbed.rng,
        )
        gateway = testbed.finish(FRONTEND)
        return testbed, gateway

    def test_topology_matches_fig3(self):
        testbed, _ = self.build()
        services = set(testbed.cluster.services)
        assert {FRONTEND, DETAILS, REVIEWS, RATINGS} <= services
        reviews = testbed.cluster.dns.resolve(REVIEWS)
        assert len(reviews.endpoints) == 2  # the two replicas
        assert len(reviews.subset({"version": "v1"})) == 1
        assert len(reviews.subset({"version": "v2"})) == 1

    def test_bottleneck_on_ratings_egress(self):
        testbed, _ = self.build()
        ratings_pod = testbed.cluster.pods_of(f"{RATINGS}-v1")[0]
        assert ratings_pod.egress.rate_bps == 1 * Gbps
        frontend_pod = testbed.cluster.pods_of(f"{FRONTEND}-v1")[0]
        assert frontend_pod.egress.rate_bps == 15 * Gbps

    def test_interactive_response_size(self):
        testbed, gateway = self.build()
        request = HttpRequest(service="")
        response = testbed.sim.run(until=gateway.submit(request))
        assert response.status == 200
        # frontend + details + reviews + ratings base bytes.
        assert response.body_size == 2000 + 2000 + 2000 + 10_000

    def test_batch_response_200x_at_ratings(self):
        testbed, gateway = self.build()
        request = HttpRequest(service="")
        request.headers[WORKLOAD_HEADER] = WORKLOAD_BATCH
        response = testbed.sim.run(until=gateway.submit(request))
        assert response.body_size == 2000 + 2000 + 2000 + 200 * 10_000

    def test_custom_config(self):
        config = ELibraryConfig(
            bottleneck_bps=0.5 * Gbps,
            batch_multiplier=10.0,
            ratings_response_bytes=1_000,
        )
        testbed, gateway = self.build(config)
        ratings_pod = testbed.cluster.pods_of(f"{RATINGS}-v1")[0]
        assert ratings_pod.egress.rate_bps == 0.5 * Gbps
        request = HttpRequest(service="")
        request.headers[WORKLOAD_HEADER] = WORKLOAD_BATCH
        response = testbed.sim.run(until=gateway.submit(request))
        assert response.body_size == 2000 * 3 + 10_000

    def test_spec_overrides(self):
        config = ELibraryConfig(
            specs_overrides={"details": {"base_response_bytes": 77}}
        )
        specs = {spec.name: spec for spec in config.specs()}
        assert specs["details"].base_response_bytes == 77


class TestDagGenerator:
    def test_layer_structure(self):
        specs = generate_dag_specs(DagConfig(layers=3, services_per_layer=3))
        names = {spec.name for spec in specs}
        assert "svc-0-0" in names
        assert len([n for n in names if n.startswith("svc-1-")]) == 3
        assert len([n for n in names if n.startswith("svc-2-")]) == 3

    def test_single_root(self):
        specs = generate_dag_specs(DagConfig(layers=4, services_per_layer=2, seed=3))
        assert dag_root(specs) == "svc-0-0"

    def test_every_service_reachable(self):
        specs = generate_dag_specs(
            DagConfig(layers=4, services_per_layer=4, fanout=1, seed=1)
        )
        children = {spec.name: set(spec.children) for spec in specs}
        reached = set()
        frontier = [dag_root(specs)]
        while frontier:
            name = frontier.pop()
            if name in reached:
                continue
            reached.add(name)
            frontier.extend(children[name])
        assert reached == set(children)

    def test_children_only_point_one_layer_down(self):
        specs = generate_dag_specs(DagConfig(layers=3, services_per_layer=2, seed=5))
        for spec in specs:
            layer = int(spec.name.split("-")[1])
            for child in spec.children:
                assert int(child.split("-")[1]) == layer + 1

    def test_deterministic_by_seed(self):
        a = generate_dag_specs(DagConfig(seed=9))
        b = generate_dag_specs(DagConfig(seed=9))
        assert [(s.name, s.children) for s in a] == [(s.name, s.children) for s in b]

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            DagConfig(layers=0)

    def test_dag_app_end_to_end(self):
        testbed = MeshTestbed()
        specs = generate_dag_specs(DagConfig(layers=3, services_per_layer=2, seed=0))
        testbed.build_app(specs)
        gateway = testbed.finish(dag_root(specs))
        response = testbed.sim.run(until=gateway.submit(HttpRequest(service="")))
        assert response.status == 200
        assert response.body_size >= 2_000  # at least the root's own bytes
