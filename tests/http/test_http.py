"""HTTP message and header model."""

import pytest

from repro.http import (
    Headers,
    HttpRequest,
    HttpResponse,
    HttpStatus,
    PRIORITY,
    PROPAGATED_HEADERS,
    REQUEST_ID,
    propagate,
)


class TestHeaders:
    def test_case_insensitive_access(self):
        headers = Headers()
        headers["X-Request-Id"] = "abc"
        assert headers["x-request-id"] == "abc"
        assert headers.get("X-REQUEST-ID") == "abc"
        assert "x-Request-id" in headers

    def test_values_stringified(self):
        headers = Headers()
        headers["x-count"] = 42
        assert headers["x-count"] == "42"

    def test_init_from_mapping(self):
        headers = Headers({"A": "1", "b": "2"})
        assert headers["a"] == "1"
        assert len(headers) == 2

    def test_get_default(self):
        assert Headers().get("missing") is None
        assert Headers().get("missing", "d") == "d"

    def test_delete(self):
        headers = Headers({"a": "1"})
        del headers["A"]
        assert "a" not in headers

    def test_copy_is_independent(self):
        original = Headers({"a": "1"})
        clone = original.copy()
        clone["a"] = "2"
        assert original["a"] == "1"

    def test_equality(self):
        assert Headers({"A": "1"}) == Headers({"a": "1"})
        assert Headers({"a": "1"}) == {"A": "1"}
        assert Headers({"a": "1"}) != Headers({"a": "2"})

    def test_wire_size_grows_with_content(self):
        small = Headers({"a": "1"})
        big = Headers({"a": "1", "x-very-long-header-name": "v" * 50})
        assert big.wire_size() > small.wire_size()

    def test_iteration(self):
        headers = Headers({"a": "1", "b": "2"})
        assert sorted(headers) == ["a", "b"]


class TestPropagation:
    def test_propagated_set_copied(self):
        parent = Headers(
            {REQUEST_ID: "req-1", PRIORITY: "high", "x-unrelated": "nope"}
        )
        child = propagate(parent)
        assert child[REQUEST_ID] == "req-1"
        assert child[PRIORITY] == "high"
        assert "x-unrelated" not in child

    def test_existing_child_values_not_overwritten(self):
        parent = Headers({PRIORITY: "high"})
        child = Headers({PRIORITY: "low"})
        propagate(parent, child)
        assert child[PRIORITY] == "low"

    def test_priority_is_in_propagated_set(self):
        # The paper's design depends on this.
        assert PRIORITY in PROPAGATED_HEADERS
        assert REQUEST_ID in PROPAGATED_HEADERS


class TestMessages:
    def test_request_wire_size(self):
        request = HttpRequest(service="svc", body_size=1000)
        assert request.wire_size() > 1000

    def test_request_ids_unique(self):
        a = HttpRequest(service="svc")
        b = HttpRequest(service="svc")
        assert a.message_id != b.message_id

    def test_reply_pairs_response_with_request(self):
        request = HttpRequest(service="svc")
        response = request.reply(body_size=5)
        assert response.request_id == request.message_id
        assert response.ok

    def test_reply_echoes_correlation_headers(self):
        request = HttpRequest(service="svc")
        request.headers[REQUEST_ID] = "req-9"
        request.headers[PRIORITY] = "low"
        response = request.reply()
        assert response.headers[REQUEST_ID] == "req-9"
        assert response.headers[PRIORITY] == "low"

    def test_status_predicates(self):
        assert HttpResponse(status=200).ok
        assert not HttpResponse(status=503).ok
        assert HttpResponse(status=503).retryable
        assert not HttpResponse(status=404).retryable
        assert not HttpResponse(status=200).retryable

    def test_retryable_statuses(self):
        assert HttpStatus.RETRYABLE == {502, 503, 504}

    def test_response_wire_size(self):
        response = HttpResponse(body_size=2_000_000)
        assert response.wire_size() >= 2_000_000
