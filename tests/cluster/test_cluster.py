"""Cluster orchestration: nodes, pods, services, scheduling, networking."""

import pytest

from repro.cluster import Cluster, PodSpec, Scheduler
from repro.sim import Simulator
from repro.util.units import Gbps


def make_cluster(nodes=2, policy="least-pods"):
    sim = Simulator()
    cluster = Cluster(sim, scheduler=Scheduler(policy))
    for i in range(nodes):
        cluster.add_node(f"node-{i}")
    return sim, cluster


class TestPods:
    def test_deployment_creates_replicas(self):
        _, cluster = make_cluster()
        deployment = cluster.create_deployment("web", replicas=3)
        assert len(deployment.pods) == 3
        assert {pod.name for pod in deployment.pods} == {"web-1", "web-2", "web-3"}

    def test_pod_gets_unique_ip(self):
        _, cluster = make_cluster()
        cluster.create_deployment("web", replicas=5)
        ips = {pod.ip for pod in cluster.pods}
        assert len(ips) == 5
        assert all(ip.startswith("10.1.") for ip in ips)

    def test_pod_default_labels(self):
        _, cluster = make_cluster()
        cluster.create_deployment("web", replicas=1)
        pod = cluster.pod("web-1")
        assert pod.labels["app"] == "web"

    def test_pod_custom_labels_and_version(self):
        _, cluster = make_cluster()
        spec = PodSpec(labels={"version": "v2"})
        cluster.create_deployment("reviews", replicas=2, spec=spec)
        for pod in cluster.pods_of("reviews"):
            assert pod.labels == {"version": "v2", "app": "reviews"}

    def test_egress_rate_override_models_bottleneck(self):
        _, cluster = make_cluster()
        spec = PodSpec(egress_rate_bps=1 * Gbps)
        cluster.create_deployment("ratings", replicas=1, spec=spec)
        pod = cluster.pod("ratings-1")
        assert pod.egress.rate_bps == 1 * Gbps
        assert pod.ingress.rate_bps == 15 * Gbps  # default unchanged

    def test_duplicate_deployment_rejected(self):
        _, cluster = make_cluster()
        cluster.create_deployment("web", replicas=1)
        with pytest.raises(ValueError):
            cluster.create_deployment("web", replicas=1)

    def test_deployment_without_nodes_rejected(self):
        sim = Simulator()
        cluster = Cluster(sim)
        with pytest.raises(RuntimeError):
            cluster.create_deployment("web", replicas=1)

    def test_unknown_pod_lookup(self):
        _, cluster = make_cluster()
        with pytest.raises(KeyError):
            cluster.pod("ghost")


class TestScheduling:
    def test_least_pods_balances(self):
        _, cluster = make_cluster(nodes=2, policy="least-pods")
        cluster.create_deployment("web", replicas=4)
        counts = sorted(node.pod_count for node in cluster.nodes)
        assert counts == [2, 2]

    def test_round_robin(self):
        _, cluster = make_cluster(nodes=3, policy="round-robin")
        cluster.create_deployment("web", replicas=3)
        assert [node.pod_count for node in cluster.nodes] == [1, 1, 1]

    def test_first_fit_single_server(self):
        _, cluster = make_cluster(nodes=2, policy="first-fit")
        cluster.create_deployment("web", replicas=4)
        assert cluster.nodes[0].pod_count == 4
        assert cluster.nodes[1].pod_count == 0

    def test_node_hint_pins_pod(self):
        _, cluster = make_cluster(nodes=2)
        spec = PodSpec(node_hint="node-1")
        cluster.create_deployment("web", replicas=2, spec=spec)
        assert all(pod.node.name == "node-1" for pod in cluster.pods)

    def test_bad_node_hint(self):
        _, cluster = make_cluster()
        spec = PodSpec(node_hint="nowhere")
        with pytest.raises(KeyError):
            cluster.create_deployment("web", replicas=1, spec=spec)

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            Scheduler("random-guess")


class TestServices:
    def test_service_selects_matching_pods(self):
        _, cluster = make_cluster()
        cluster.create_deployment("web", replicas=2)
        cluster.create_deployment("db", replicas=1)
        service = cluster.create_service("web-svc", selector={"app": "web"})
        assert len(service.endpoints) == 2
        assert {e.pod_name for e in service.endpoints} == {"web-1", "web-2"}

    def test_service_subset_by_version(self):
        _, cluster = make_cluster()
        cluster.create_deployment(
            "reviews-v1", replicas=1, spec=PodSpec(labels={"app": "reviews", "version": "v1"})
        )
        cluster.create_deployment(
            "reviews-v2", replicas=1, spec=PodSpec(labels={"app": "reviews", "version": "v2"})
        )
        service = cluster.create_service("reviews", selector={"app": "reviews"})
        assert len(service.endpoints) == 2
        v1 = service.subset({"version": "v1"})
        assert len(v1) == 1 and v1[0].pod_name == "reviews-v1-1"

    def test_scale_up_updates_endpoints(self):
        _, cluster = make_cluster()
        cluster.create_deployment("web", replicas=1)
        service = cluster.create_service("web-svc", selector={"app": "web"})
        generation = service.generation
        cluster.scale("web", 3)
        assert len(service.endpoints) == 3
        assert service.generation > generation

    def test_scale_down_removes_endpoints(self):
        _, cluster = make_cluster()
        cluster.create_deployment("web", replicas=3)
        service = cluster.create_service("web-svc", selector={"app": "web"})
        cluster.scale("web", 1)
        assert len(service.endpoints) == 1

    def test_dns_resolution(self):
        _, cluster = make_cluster()
        cluster.create_deployment("web", replicas=1)
        service = cluster.create_service("web-svc", selector={"app": "web"})
        assert cluster.dns.resolve("web-svc") is service
        with pytest.raises(KeyError):
            cluster.dns.resolve("ghost")

    def test_dns_watcher_sees_changes(self):
        _, cluster = make_cluster()
        cluster.create_deployment("web", replicas=1)
        cluster.create_service("web-svc", selector={"app": "web"})
        events = []
        cluster.dns.watch(lambda service: events.append(service.generation))
        assert events  # initial notification
        before = len(events)
        cluster.scale("web", 2)
        assert len(events) > before

    def test_empty_selector_rejected(self):
        _, cluster = make_cluster()
        with pytest.raises(ValueError):
            cluster.create_service("bad", selector={})


class TestClusterNetworking:
    def test_pods_can_talk_across_nodes(self):
        sim, cluster = make_cluster(nodes=2, policy="round-robin")
        cluster.create_deployment("web", replicas=2)
        cluster.build_routes()
        a, b = cluster.pods_of("web")
        assert a.node is not b.node
        received = []

        def on_accept(conn):
            def serve():
                message, size = yield conn.receive()
                received.append(message)

            sim.process(serve())

        b.stack.listen(80, on_accept)
        conn = a.stack.connect(b.ip, 80)

        def client(sim):
            yield conn.established
            conn.send("cross-node", 1000)

        sim.process(client(sim))
        sim.run()
        assert received == ["cross-node"]

    def test_pods_can_talk_same_node(self):
        sim, cluster = make_cluster(nodes=1)
        cluster.create_deployment("web", replicas=2)
        cluster.build_routes()
        a, b = cluster.pods_of("web")
        received = []

        def on_accept(conn):
            def serve():
                message, _ = yield conn.receive()
                received.append(message)

            sim.process(serve())

        b.stack.listen(80, on_accept)
        conn = a.stack.connect(b.ip, 80)

        def client(sim):
            yield conn.established
            conn.send("same-node", 1000)

        sim.process(client(sim))
        sim.run()
        assert received == ["same-node"]
