"""The pod scheduler: policies, hints, and failure modes."""

import pytest

from repro.cluster import Cluster, PodSpec, Scheduler
from repro.cluster.node import Node
from repro.sim import Simulator


def nodes(sim, count):
    return [Node(sim, f"node-{i}") for i in range(count)]


class TestConstruction:
    def test_known_policies(self):
        assert Scheduler.POLICIES == ("least-pods", "round-robin", "first-fit")
        for policy in Scheduler.POLICIES:
            assert Scheduler(policy).policy == policy

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown policy"):
            Scheduler("best-fit")

    def test_default_is_least_pods(self):
        assert Scheduler().policy == "least-pods"


class TestPick:
    def test_no_nodes_raises(self):
        with pytest.raises(RuntimeError, match="no nodes"):
            Scheduler().pick([])

    def test_hint_pins_regardless_of_policy(self):
        sim = Simulator()
        pool = nodes(sim, 3)
        for policy in Scheduler.POLICIES:
            picked = Scheduler(policy).pick(pool, node_hint="node-2")
            assert picked is pool[2]

    def test_unknown_hint_raises(self):
        sim = Simulator()
        with pytest.raises(KeyError, match="unknown node"):
            Scheduler().pick(nodes(sim, 2), node_hint="node-9")

    def test_first_fit_always_first(self):
        sim = Simulator()
        pool = nodes(sim, 3)
        scheduler = Scheduler("first-fit")
        assert [scheduler.pick(pool) for _ in range(4)] == [pool[0]] * 4

    def test_round_robin_rotates(self):
        sim = Simulator()
        pool = nodes(sim, 3)
        scheduler = Scheduler("round-robin")
        picks = [scheduler.pick(pool).name for _ in range(6)]
        assert picks == ["node-0", "node-1", "node-2"] * 2

    def test_least_pods_balances(self):
        sim = Simulator()
        pool = nodes(sim, 2)
        pool[0].pods.extend(["a", "b"])  # pick() only reads pod_count
        assert Scheduler("least-pods").pick(pool) is pool[1]


class TestThroughCluster:
    """The scheduler as the cluster drives it."""

    def build(self, policy):
        cluster = Cluster(Simulator(), scheduler=Scheduler(policy))
        for i in range(3):
            cluster.add_node(f"node-{i}")
        return cluster

    def placements(self, cluster):
        return {pod.name: pod.node.name for pod in cluster.pods}

    def test_least_pods_spreads_replicas(self):
        cluster = self.build("least-pods")
        cluster.create_deployment("web", replicas=3, spec=PodSpec())
        assert sorted(self.placements(cluster).values()) == [
            "node-0", "node-1", "node-2",
        ]

    def test_first_fit_stacks_one_node(self):
        cluster = self.build("first-fit")
        cluster.create_deployment("web", replicas=3, spec=PodSpec())
        assert set(self.placements(cluster).values()) == {"node-0"}

    def test_node_hint_wins_over_policy(self):
        cluster = self.build("first-fit")
        cluster.create_deployment(
            "web", replicas=2, spec=PodSpec(node_hint="node-2")
        )
        assert set(self.placements(cluster).values()) == {"node-2"}
