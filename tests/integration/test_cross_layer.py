"""End-to-end integration: the full §4.3 pipeline on short runs.

These are scaled-down versions of the benchmark experiments — small
enough for the unit-test suite, large enough to verify the cross-layer
machinery end to end.
"""

import pytest

from repro.core import audit_provenance
from repro.experiments import ScenarioConfig, run_scenario
from repro.workload.mixes import LI_WORKLOAD, LS_WORKLOAD

SHORT = dict(duration=4.0, warmup=1.0, rps=30.0, seed=7)


@pytest.fixture(scope="module")
def baseline_run():
    return run_scenario(ScenarioConfig(cross_layer=False, **SHORT))


@pytest.fixture(scope="module")
def optimized_run():
    return run_scenario(ScenarioConfig(cross_layer=True, **SHORT))


class TestScenarioMechanics:
    def test_all_requests_complete(self, baseline_run):
        assert baseline_run.mix.issued > 0
        assert len(baseline_run.recorder) == baseline_run.mix.issued
        assert baseline_run.recorder.error_rate() == 0.0

    def test_both_workloads_present(self, baseline_run):
        assert baseline_run.recorder.of(LS_WORKLOAD)
        assert baseline_run.recorder.of(LI_WORKLOAD)

    def test_li_responses_bigger_than_ls(self, baseline_run):
        telemetry = baseline_run.telemetry
        # LI latencies at the gateway dominate LS ones (200x responses).
        ls = baseline_run.ls_summary()
        li = baseline_run.li_summary()
        assert li.p50 > ls.p50

    def test_manager_not_created_for_baseline(self, baseline_run):
        assert baseline_run.manager is None

    def test_manager_summary_for_optimized(self, optimized_run):
        summary = optimized_run.manager.summary()
        assert summary["applied"]
        assert summary["pinned_services"] == ["reviews"]
        assert summary["tc_interfaces"] > 0
        classified = summary["classified"]
        assert all(count > 0 for count in classified.values())


class TestCrossLayerEffect:
    def test_ls_tail_improves(self, baseline_run, optimized_run):
        """The headline effect at small scale: prioritization cuts the
        LS tail when LI competes for the ratings bottleneck."""
        off = baseline_run.ls_summary()
        on = optimized_run.ls_summary()
        assert on.p99 < off.p99, (
            f"LS p99 did not improve: {on.p99 * 1e3:.1f} ms vs "
            f"{off.p99 * 1e3:.1f} ms"
        )

    def test_li_still_completes(self, optimized_run):
        li = optimized_run.li_summary()
        assert li.count > 0
        assert optimized_run.recorder.error_rate(LI_WORKLOAD) == 0.0

    def test_replica_pinning_separates_endpoints(self, optimized_run):
        distribution = optimized_run.telemetry.endpoint_distribution("reviews")
        v1 = {k: v for k, v in distribution.items() if "v1" in k}
        v2 = {k: v for k, v in distribution.items() if "v2" in k}
        assert v1 and v2
        # Check provenance->endpoint mapping via per-priority latencies:
        # every high-priority reviews request landed on v1 and vice versa.
        for record in optimized_run.telemetry.records:
            if record.destination == "reviews" and record.endpoint:
                if record.priority == "high":
                    assert "v1" in record.endpoint
                elif record.priority == "low":
                    assert "v2" in record.endpoint

    def test_no_pinning_in_baseline(self, baseline_run):
        distribution = baseline_run.telemetry.endpoint_distribution("reviews")
        assert len(distribution) == 2  # both replicas used by both classes

    def test_provenance_consistent_end_to_end(self, optimized_run):
        report = audit_provenance(optimized_run.tracer)
        assert report.traces_total > 0
        assert report.consistent, report.violations[:3]
        assert set(report.priority_counts) == {"high", "low"}

    def test_tc_high_band_carried_traffic(self, optimized_run):
        tc = optimized_run.manager.tc
        assert tc.high_band_bytes() > 0
        assert tc.low_band_bytes() > 0
        # LI bytes dominate (200x responses ride the low band).
        assert tc.low_band_bytes() > tc.high_band_bytes()


class TestDeterminism:
    def test_same_seed_same_results(self):
        config = ScenarioConfig(duration=2.0, warmup=0.5, rps=20.0, seed=123)
        first = run_scenario(config)
        second = run_scenario(config)
        a = [(s.workload, s.sent_at, s.latency) for s in first.recorder.samples]
        b = [(s.workload, s.sent_at, s.latency) for s in second.recorder.samples]
        assert a == b

    def test_different_seed_different_results(self):
        base = dict(duration=2.0, warmup=0.5, rps=20.0)
        first = run_scenario(ScenarioConfig(seed=1, **base))
        second = run_scenario(ScenarioConfig(seed=2, **base))
        a = [s.latency for s in first.recorder.samples]
        b = [s.latency for s in second.recorder.samples]
        assert a != b
