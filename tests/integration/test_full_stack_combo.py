"""Everything at once: the full §4.2 stack over multiplexed channels.

The most loaded configuration the library supports — replica pinning,
TC priority, scavenger transport, packet tagging, priority inbound
queues, AND one multiplexed connection per sidecar pair — run end to
end to verify the features compose.
"""

import pytest

from repro.core import CrossLayerPolicy, audit_provenance
from repro.experiments import ScenarioConfig, run_scenario
from repro.mesh import MeshConfig

EVERYTHING = CrossLayerPolicy(
    replica_pinning=True,
    tc_prio=True,
    scavenger_transport=True,
    packet_tagging=True,
    inbound_queueing=True,
)

SHORT = dict(rps=25.0, duration=4.0, warmup=1.0, seed=9)


@pytest.fixture(scope="module")
def combo_run():
    return run_scenario(
        ScenarioConfig(policy=EVERYTHING, mesh=MeshConfig(use_mux=True), **SHORT)
    )


@pytest.fixture(scope="module")
def plain_baseline():
    return run_scenario(ScenarioConfig(cross_layer=False, **SHORT))


class TestComposition:
    def test_everything_completes_without_errors(self, combo_run):
        assert combo_run.mix.issued > 0
        assert len(combo_run.recorder) == combo_run.mix.issued
        assert combo_run.recorder.error_rate() == 0.0

    def test_ls_still_wins(self, combo_run, plain_baseline):
        assert combo_run.ls_summary().p99 < plain_baseline.ls_summary().p99

    def test_provenance_survives_all_features(self, combo_run):
        report = audit_provenance(combo_run.tracer)
        assert report.traces_total > 0
        assert report.consistent, report.violations[:3]

    def test_mux_kept_connection_count_low(self, combo_run, plain_baseline):
        combo_conns = sum(
            s.pool_connections_created for s in combo_run.mesh.sidecars
        )
        plain_conns = sum(
            s.pool_connections_created for s in plain_baseline.mesh.sidecars
        )
        assert combo_conns < plain_conns

    def test_pinning_held_under_mux(self, combo_run):
        for record in combo_run.telemetry.records:
            if record.destination == "reviews" and record.endpoint:
                if record.priority == "high":
                    assert "v1" in record.endpoint
                elif record.priority == "low":
                    assert "v2" in record.endpoint

    def test_scavenger_connections_created(self, combo_run):
        """LOW traffic rode LEDBAT: some sidecar opened a scavenger-keyed
        channel (pool key includes the cc algorithm)."""
        ledbat_keys = [
            key
            for sidecar in combo_run.mesh.sidecars
            for key in sidecar._mux_channels
            if key[3] == "ledbat"
        ]
        assert ledbat_keys

    def test_manager_installed_all_layers(self, combo_run):
        summary = combo_run.manager.summary()
        assert summary["applied"]
        assert summary["pinned_services"] == ["reviews"]
        assert summary["tc_interfaces"] > 0
        for sidecar in combo_run.mesh.sidecars:
            assert sidecar._inbound_queue is not None
