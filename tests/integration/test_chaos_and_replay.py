"""Failure injection under load, pod churn, EDF queueing, trace replay."""

import pytest

from helpers import MeshTestbed, echo_handler

from repro.cluster import Chaos
from repro.core import CrossLayerPolicy, PriorityPolicyHooks
from repro.http import HttpRequest
from repro.mesh import MeshConfig, RetryPolicy
from repro.workload import (
    LatencyRecorder,
    TraceEntry,
    TraceReplayer,
    synthesize_trace,
)


class TestChaosPods:
    def test_retries_ride_out_a_killed_replica(self):
        config = MeshConfig(
            retry=RetryPolicy(max_attempts=4, per_try_timeout=0.3, backoff_base=0.01)
        )
        testbed = MeshTestbed(mesh_config=config)
        testbed.add_service("svc", echo_handler(body_size=10), replicas=3)
        gateway = testbed.finish("svc")
        chaos = Chaos(testbed.cluster)
        chaos.kill_pod("svc-v1-2")
        testbed.sim.run(until=0.2)  # endpoint update propagates
        statuses = []
        for _ in range(10):
            event = gateway.submit(HttpRequest(service=""))
            statuses.append(testbed.sim.run(until=event).status)
        assert all(status == 200 for status in statuses)

    def test_kill_before_discovery_push_still_recovers(self):
        """Requests racing the endpoint update hit the dead pod, time
        out, and succeed on retry against a live replica."""
        config = MeshConfig(
            retry=RetryPolicy(max_attempts=4, per_try_timeout=0.2, backoff_base=0.01)
        )
        testbed = MeshTestbed(mesh_config=config)
        testbed.add_service("svc", echo_handler(body_size=10), replicas=2)
        gateway = testbed.finish("svc")
        chaos = Chaos(testbed.cluster)
        chaos.kill_pod("svc-v1-1")
        # Immediately: the gateway's endpoint list still has the corpse.
        statuses = []
        for _ in range(6):
            event = gateway.submit(HttpRequest(service=""), timeout=5.0)
            statuses.append(testbed.sim.run(until=event).status)
        assert statuses.count(200) == 6

    def test_restore_pod_returns_to_rotation(self):
        testbed = MeshTestbed()
        testbed.add_service("svc", echo_handler(), replicas=2)
        gateway = testbed.finish("svc")
        chaos = Chaos(testbed.cluster)
        chaos.kill_pod("svc-v1-1")
        assert chaos.killed_pods == ["svc-v1-1"]
        chaos.restore_pod("svc-v1-1")
        testbed.sim.run(until=0.2)
        for _ in range(8):
            event = gateway.submit(HttpRequest(service=""))
            assert testbed.sim.run(until=event).status == 200
        distribution = testbed.mesh.telemetry.endpoint_distribution("svc")
        assert set(distribution) == {"svc-v1-1", "svc-v1-2"}

    def test_scale_up_under_load_is_seamless(self):
        testbed = MeshTestbed()
        testbed.add_service("svc", echo_handler(), replicas=1)
        gateway = testbed.finish("svc")
        recorder = []

        def driver():
            for index in range(30):
                event = gateway.submit(HttpRequest(service=""))
                response = yield event
                recorder.append(response.status)
                if index == 10:
                    # Scale out mid-run; note: new pods need handlers.
                    testbed.add_service("svc", echo_handler(), version="v2")
                yield testbed.sim.timeout(0.05)

        testbed.sim.process(driver())
        testbed.sim.run(until=10.0)
        assert recorder.count(200) == 30


class TestChaosPartitions:
    def test_partition_breaks_then_heal_restores(self):
        config = MeshConfig(
            retry=RetryPolicy(max_attempts=1), default_timeout=0.5
        )
        testbed = MeshTestbed(mesh_config=config)
        testbed.add_service("svc", echo_handler(body_size=10))
        gateway = testbed.finish("svc")
        chaos = Chaos(testbed.cluster)
        pod = testbed.cluster.pods_of("svc-v1")[0]
        chaos.partition(f"pod:{pod.name}", "node:node-0")
        event = gateway.submit(HttpRequest(service=""))
        response = testbed.sim.run(until=event)
        assert response.status in (503, 504)
        chaos.heal(f"pod:{pod.name}", "node:node-0")
        event = gateway.submit(HttpRequest(service=""))
        assert testbed.sim.run(until=event).status == 200

    def test_heal_all(self):
        testbed = MeshTestbed()
        testbed.add_service("svc", echo_handler(), replicas=2)
        testbed.finish("svc")
        chaos = Chaos(testbed.cluster)
        chaos.kill_pod("svc-v1-1")
        pod = testbed.cluster.pods_of("svc-v1")[0]  # the surviving replica
        chaos.partition(f"pod:{pod.name}", "node:node-0")
        chaos.heal_all()
        assert chaos.killed_pods == []
        assert chaos._partitions == {}


class TestDeadlineQueueing:
    def test_edf_within_priority_class(self):
        """With inbound EDF queueing, the tighter-deadline request of
        the same class is served first."""
        config = MeshConfig(inbound_concurrency=1)
        testbed = MeshTestbed(mesh_config=config)
        order = []

        def slow_handler(ctx, request):
            yield ctx.sleep(0.1)
            order.append(request.headers.get("x-deadline"))
            return request.reply(body_size=1)

        testbed.add_service("svc", slow_handler)
        gateway = testbed.finish("svc")
        testbed.mesh.set_policy(PriorityPolicyHooks(CrossLayerPolicy()))

        def submit(deadline, priority="high"):
            request = HttpRequest(service="")
            request.headers["x-priority"] = priority
            request.headers["x-deadline"] = str(deadline)
            return gateway.submit(request, timeout=30.0)

        events = [submit(9.0)]          # occupies the worker
        testbed.sim.run(until=0.05)
        events += [submit(5.0), submit(1.0), submit(3.0)]  # queue up
        testbed.sim.run(until=testbed.sim.all_of(events))
        assert order == ["9.0", "1.0", "3.0", "5.0"]

    def test_class_beats_deadline(self):
        """A HIGH request with a loose deadline still beats a LOW
        request with a tight one (strict priority between classes)."""
        config = MeshConfig(inbound_concurrency=1)
        testbed = MeshTestbed(mesh_config=config)
        order = []

        def slow_handler(ctx, request):
            yield ctx.sleep(0.1)
            order.append(request.headers.get("x-priority"))
            return request.reply(body_size=1)

        testbed.add_service("svc", slow_handler)
        gateway = testbed.finish("svc")
        testbed.mesh.set_policy(PriorityPolicyHooks(CrossLayerPolicy()))

        def submit(priority, deadline):
            request = HttpRequest(service="")
            request.headers["x-priority"] = priority
            request.headers["x-deadline"] = str(deadline)
            return gateway.submit(request, timeout=30.0)

        events = [submit("low", 99.0)]
        testbed.sim.run(until=0.05)
        events += [submit("low", 0.1), submit("high", 50.0)]
        testbed.sim.run(until=testbed.sim.all_of(events))
        assert order == ["low", "high", "low"]


class TestTraceReplay:
    def test_synthesized_trace_structure(self):
        trace = synthesize_trace(duration=30.0, base_rps=20.0, seed=1)
        assert trace, "empty trace"
        times = [entry.at for entry in trace]
        assert times == sorted(times)
        assert all(0 <= t < 30.0 for t in times)
        workloads = {entry.workload for entry in trace}
        assert workloads == {"interactive", "batch"}
        # Offered load within a factor of the base rate.
        assert len(trace) == pytest.approx(30 * 20, rel=0.5)

    def test_synthesized_trace_deterministic(self):
        a = synthesize_trace(10.0, 10.0, seed=3)
        b = synthesize_trace(10.0, 10.0, seed=3)
        assert a == b

    def test_invalid_trace_parameters(self):
        with pytest.raises(ValueError):
            synthesize_trace(0, 10)

    def test_replay_fires_at_recorded_times(self):
        testbed = MeshTestbed()
        testbed.add_service("svc", echo_handler(), workers=16)
        gateway = testbed.finish("svc")
        trace = [
            TraceEntry(at=0.5, workload="interactive"),
            TraceEntry(at=1.0, workload="batch"),
            TraceEntry(at=2.5, workload="interactive"),
        ]
        recorder = LatencyRecorder()
        replayer = TraceReplayer(testbed.sim, gateway, trace, recorder)
        replayer.start()
        testbed.sim.run(until=10.0)
        assert replayer.issued == 3
        sent = sorted(sample.sent_at for sample in recorder.samples)
        assert sent == pytest.approx([0.5, 1.0, 2.5])
        assert {sample.workload for sample in recorder.samples} == {
            "interactive",
            "batch",
        }

    def test_unordered_trace_rejected(self):
        testbed = MeshTestbed()
        testbed.add_service("svc", echo_handler())
        gateway = testbed.finish("svc")
        bad = [TraceEntry(at=2.0, workload="interactive"),
               TraceEntry(at=1.0, workload="interactive")]
        with pytest.raises(ValueError):
            TraceReplayer(testbed.sim, gateway, bad, LatencyRecorder())

    def test_replay_end_to_end_with_synthetic_trace(self):
        testbed = MeshTestbed()
        testbed.add_service("svc", echo_handler(), workers=32)
        gateway = testbed.finish("svc")
        trace = synthesize_trace(duration=5.0, base_rps=20.0, seed=5)
        recorder = LatencyRecorder()
        replayer = TraceReplayer(testbed.sim, gateway, trace, recorder)
        replayer.start()
        testbed.sim.run(until=15.0)
        assert len(recorder) == replayer.issued == len(trace)
        assert recorder.error_rate() == 0.0
