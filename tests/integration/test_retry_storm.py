"""The retry-storm feedback loop, off and on.

A retry storm is offered-load amplification: failures trigger retries,
retries multiply the load the failing system sees.  With a seeded 50 %
fault rate and 3-attempt retries the expected amplification is
1 + 0.5 + 0.25 = 1.75x; the overload posture's retry budget plus
non-retryable 429 shedding must hold it at ~1x.  Both arms are fully
seeded and must reproduce byte-identically back-to-back.
"""

import random

from helpers import MeshTestbed

from repro.chaos import FaultEvent, FaultInjector, metastable_profile
from repro.http import HttpRequest, HttpStatus
from repro.mesh import MeshConfig, RetryPolicy
from repro.overload import OverloadConfig

LOGICAL_REQUESTS = 120
FAILURE_RATE = 0.5
SEED = 1234


def flaky_handler(seed):
    """503 with seeded probability FAILURE_RATE, else 200."""
    rng = random.Random(seed)

    def handler(ctx, request):
        if rng.random() < FAILURE_RATE:
            return request.reply(HttpStatus.SERVICE_UNAVAILABLE)
        if False:
            yield  # pragma: no cover - marks this as a generator
        return request.reply(body_size=100)

    return handler


def storm_config(budgeted):
    retry = RetryPolicy(max_attempts=3, backoff_base=0.002, backoff_max=0.01)
    if not budgeted:
        return MeshConfig(retry=retry)
    return MeshConfig(
        retry=retry,
        overload=OverloadConfig(
            gate=None,
            concurrency=None,
            retry_budget_ratio=0.05,
            retry_budget_min=0,
        ),
    )


def run_storm(budgeted):
    """One seeded run; returns the canonical result line."""
    testbed = MeshTestbed(mesh_config=storm_config(budgeted), seed=SEED)
    testbed.add_service("flaky", flaky_handler(SEED))
    gateway = testbed.finish("flaky")
    events = []

    def drive():
        # Open-loop arrivals: 10 ms spacing keeps a handful in flight,
        # which is what gives the ratio-based budget its denominator.
        for _ in range(LOGICAL_REQUESTS):
            events.append(gateway.submit(HttpRequest(service=""), timeout=5.0))
            yield testbed.sim.timeout(0.01)

    testbed.sim.process(drive())
    testbed.sim.run(until=10.0)
    testbed.sim.run(until=testbed.sim.all_of(events))
    telemetry = testbed.mesh.telemetry
    tries = LOGICAL_REQUESTS + telemetry.retries_total
    amplification = tries / LOGICAL_REQUESTS
    statuses = [event.value.status for event in events]
    return {
        "amplification": round(amplification, 6),
        "retries": telemetry.retries_total,
        "denied": telemetry.retries_denied_total,
        "ok": statuses.count(200),
        "statuses": tuple(statuses),
    }


class TestRetryStorm:
    def test_unbudgeted_amplification_exceeds_1_5(self):
        result = run_storm(budgeted=False)
        assert result["amplification"] > 1.5
        assert result["denied"] == 0

    def test_budget_caps_amplification_at_1_1(self):
        result = run_storm(budgeted=True)
        assert result["amplification"] <= 1.1
        assert result["denied"] > 0
        # The budget trades retries away: failures surface instead of
        # being retried into extra offered load.
        assert result["ok"] < LOGICAL_REQUESTS

    def test_byte_identical_back_to_back(self):
        for budgeted in (False, True):
            first = repr(run_storm(budgeted=budgeted))
            second = repr(run_storm(budgeted=budgeted))
            assert first == second


class TestMetastableLatencyFault:
    """The chaos side of the tentpole: a transient latency fault makes
    every in-fault try blow its per-try timeout, and timeout-triggered
    retries are exactly the storm fuel the budget must cut off."""

    def build(self, budgeted):
        retry = RetryPolicy(
            max_attempts=4,
            per_try_timeout=0.1,
            backoff_base=0.002,
            backoff_max=0.01,
        )
        if budgeted:
            config = MeshConfig(
                retry=retry,
                overload=OverloadConfig(
                    gate=None,
                    concurrency=None,
                    retry_budget_ratio=0.0,
                    retry_budget_min=0,
                ),
            )
        else:
            config = MeshConfig(retry=retry)
        testbed = MeshTestbed(mesh_config=config, seed=SEED)

        def quick(ctx, request):
            yield ctx.sleep(0.005)
            return request.reply(body_size=100)

        testbed.add_service("svc", quick)
        return testbed, testbed.finish("svc")

    def run_with_fault(self, budgeted):
        testbed, gateway = self.build(budgeted)
        injector = FaultInjector(testbed.sim, testbed.cluster, testbed.rng)
        pod = testbed.cluster.pods_of("svc-v1")[0]
        # Hand-built timeline (exact control; no RNG): +300 ms on the
        # pod link from t=1 to t=3, dwarfing the 100 ms per-try timeout.
        event = FaultEvent(
            at=1.0, kind="latency", target=pod.name, duration=2.0, severity=0.3
        )
        testbed.sim.call_at(event.at, injector._apply, event)
        events = []

        def drive():
            for _ in range(60):
                events.append(
                    gateway.submit(HttpRequest(service=""), timeout=5.0)
                )
                yield testbed.sim.timeout(0.05)

        testbed.sim.process(drive())
        testbed.sim.run(until=15.0)
        testbed.sim.run(until=testbed.sim.all_of(events))
        assert injector.applied == 1 and injector.reverted == 1
        return testbed.mesh.telemetry

    def test_fault_driven_retries_cut_by_budget(self):
        off = self.run_with_fault(budgeted=False)
        on = self.run_with_fault(budgeted=True)
        assert off.retries_total > 10   # the fault fuels a storm...
        assert on.retries_total == 0    # ...the zero budget extinguishes
        assert on.retries_denied_total > 10


class TestMetastableProfile:
    def test_profile_expands_to_latency_events(self):
        from repro.chaos.events import build_timeline
        from repro.sim import RngRegistry

        profile = metastable_profile(start=3.0, duration=3.0)
        timeline = build_timeline(
            profile,
            ["pod-a", "pod-b"],
            horizon=20.0,
            rng=RngRegistry(7).stream("chaos:timeline"),
        )
        assert timeline, "profile must inject within a 20 s horizon"
        assert all(e.kind == "latency" for e in timeline)
        assert all(e.at >= 3.0 for e in timeline)
        assert all(e.severity > 0 for e in timeline)
