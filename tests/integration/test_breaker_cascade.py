"""Bounded blast radius: ejection + shedding must not cascade upstream.

The failure mode this guards against is the circuit-breaker cascade:
a deep tier sheds under overload (or ejects a broken replica), the
tier above translates those failures into its *own* 5xx responses,
the tier above that ejects *healthy* endpoints, and the outage climbs
the chain.  The mesh's design breaks the loop in two places:

* overload sheds reply 429 — below the breaker/outlier "failure"
  threshold (>= 500), so a caller never blames an endpoint for load
  the caller itself offered;
* outlier ejection is per-endpoint at the *calling* sidecar, so only
  the tier that directly observes a broken replica ejects it.

This test drives a 4-hop chain (edge -> tier1 -> tier2 -> storage)
where storage has one genuinely broken replica AND the deep tier
saturates (tiny concurrency limit + queue).  The broken replica must
be ejected at tier2, sheds must occur, and no upstream tier may eject
anything — the blast radius stays at the faulty tier.  Fully seeded,
byte-identical across back-to-back runs.
"""

from helpers import MeshTestbed

from repro.http import HttpRequest, HttpStatus
from repro.mesh import MeshConfig, RetryPolicy
from repro.mesh.outlier import OutlierConfig
from repro.overload import OverloadConfig

SEED = 7
REQUESTS = 120
ARRIVAL_SPACING = 0.05  # 20 rps offered against a ~12 rps serialized edge


def relay_handler(downstream):
    """Call one downstream service and propagate its status verbatim.

    Status-preserving propagation is the well-behaved contract: a 429
    shed two tiers down stays a 429 at the edge instead of mutating
    into a 502 that upstream outlier detectors would score as an
    endpoint failure."""

    def handler(ctx, request):
        response = yield ctx.call(downstream, timeout=5.0)
        if response.status != HttpStatus.OK:
            return request.reply(response.status)
        return request.reply(body_size=200)

    return handler


def broken_handler(ctx, request):
    # Fails at the same latency the healthy replica serves at: fast
    # failures would complete first and front-load the error rate the
    # upstream tiers observe, which is a latency artifact, not the
    # cascade this test is about.
    yield ctx.sleep(0.05)
    return request.reply(HttpStatus.SERVICE_UNAVAILABLE)


def slow_handler(ctx, request):
    # Slow enough that open-loop arrivals overflow the depth-2 queue.
    yield ctx.sleep(0.05)
    return request.reply(body_size=200)


def run_chain():
    config = MeshConfig(
        retry=RetryPolicy(max_attempts=1),
        # Threshold 0.6: the broken replica (error rate 1.0) trips it,
        # while the ~0.5 transient rate that round-robin propagation
        # shows the upstream tiers before ejection stays below it.
        # Sheds reply 429 (< 500), so they never count against it.
        outlier=OutlierConfig(
            min_requests=6, error_rate_threshold=0.6, ejection_time=60.0
        ),
        overload=OverloadConfig(
            gate=None,            # no ingress gate: pressure reaches the tiers
            concurrency=1,
            queue_depth=2,
            retry_budget_ratio=None,
        ),
    )
    testbed = MeshTestbed(mesh_config=config, seed=SEED)
    testbed.add_service("edge", relay_handler("tier1"), workers=8)
    testbed.add_service("tier1", relay_handler("tier2"), workers=8)
    testbed.add_service("tier2", relay_handler("storage"), workers=8)
    testbed.add_service("storage", broken_handler, version="v1", workers=8)
    testbed.add_service("storage", slow_handler, version="v2", workers=8)
    gateway = testbed.finish("edge")
    events = []

    def drive():
        # Let the control plane's delayed endpoint pushes land first:
        # sidecars injected before later tiers existed learn those
        # endpoints config_push_delay later, and a pre-push request
        # would 503 with NoHealthyUpstream — a bootstrap artifact, not
        # the cascade under test.
        yield testbed.sim.timeout(0.5)
        for _ in range(REQUESTS):
            events.append(gateway.submit(HttpRequest(service=""), timeout=10.0))
            yield testbed.sim.timeout(ARRIVAL_SPACING)

    testbed.sim.process(drive())
    testbed.sim.run(until=30.0)
    testbed.sim.run(until=testbed.sim.all_of(events))
    statuses = tuple(event.value.status for event in events)
    ejections = {}
    for service, sidecars in testbed.microservices.items():
        for micro in sidecars:
            for target, detector in micro.sidecar._outliers.items():
                key = (service, target)
                ejections[key] = ejections.get(key, 0) + detector.ejections
    # The ingress gateway's sidecar calls the edge tier directly.
    for target, detector in gateway.sidecar._outliers.items():
        key = ("ingress", target)
        ejections[key] = ejections.get(key, 0) + detector.ejections
    return {
        "statuses": statuses,
        "ejections": ejections,
        "sheds": testbed.mesh.telemetry.overload_rejections_total,
    }


class TestBreakerCascade:
    def test_blast_radius_is_one_tier(self):
        outcome = run_chain()
        statuses = outcome["statuses"]
        ejections = outcome["ejections"]
        # The chain stays alive: requests succeed end-to-end even while
        # the broken replica fails and the deep tier sheds.
        assert statuses.count(HttpStatus.OK) > 0
        # Saturation at the constricted tiers really shed load ...
        assert outcome["sheds"] > 0
        assert HttpStatus.TOO_MANY_REQUESTS in statuses
        # ... and the broken storage replica was ejected where it is
        # observed: at tier2, the only tier that calls storage.
        assert ejections.get(("tier2", "storage"), 0) >= 1
        # Bounded blast radius: no other (tier, target) pair ejected
        # anything — sheds and propagated errors never climbed the
        # chain into ejections of healthy endpoints.
        upstream = {
            key: count
            for key, count in ejections.items()
            if key != ("tier2", "storage")
        }
        assert all(count == 0 for count in upstream.values()), upstream

    def test_deterministic_repro(self):
        first = run_chain()
        second = run_chain()
        assert first == second
