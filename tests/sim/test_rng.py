"""Deterministic RNG streams and distribution helpers."""

import numpy as np
import pytest

from repro.sim import Distributions, RngRegistry, lognormal_params_from_quantiles
from repro.sim.rng import _normal_ppf


def test_same_seed_same_stream():
    a = RngRegistry(42).stream("workload")
    b = RngRegistry(42).stream("workload")
    assert a.random() == b.random()


def test_different_names_independent():
    registry = RngRegistry(42)
    a = registry.stream("alpha").random(100)
    b = registry.stream("beta").random(100)
    assert not np.allclose(a, b)


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x").random()
    b = RngRegistry(2).stream("x").random()
    assert a != b


def test_stream_is_cached():
    registry = RngRegistry(0)
    assert registry.stream("s") is registry.stream("s")


def test_spawn_child_registry_independent():
    registry = RngRegistry(7)
    child = registry.spawn("child")
    assert registry.stream("x").random() != child.stream("x").random()


def test_spawn_deterministic():
    a = RngRegistry(7).spawn("c").stream("x").random()
    b = RngRegistry(7).spawn("c").stream("x").random()
    assert a == b


def test_lognormal_quantile_parameterization():
    mu, sigma = lognormal_params_from_quantiles(median=0.010, high=0.030)
    samples = np.random.default_rng(0).lognormal(mu, sigma, 200_000)
    assert np.median(samples) == pytest.approx(0.010, rel=0.02)
    assert np.percentile(samples, 99) == pytest.approx(0.030, rel=0.05)


def test_lognormal_quantile_validation():
    with pytest.raises(ValueError):
        lognormal_params_from_quantiles(median=0.0, high=1.0)
    with pytest.raises(ValueError):
        lognormal_params_from_quantiles(median=2.0, high=1.0)


def test_normal_ppf_matches_scipy():
    scipy_stats = pytest.importorskip("scipy.stats")
    for q in [0.001, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999]:
        assert _normal_ppf(q) == pytest.approx(scipy_stats.norm.ppf(q), abs=1e-6)


def test_normal_ppf_domain():
    with pytest.raises(ValueError):
        _normal_ppf(0.0)
    with pytest.raises(ValueError):
        _normal_ppf(1.0)


def test_distributions_sampling():
    dist = Distributions(np.random.default_rng(0))
    assert dist.constant(5.0) == 5.0
    assert dist.exponential(1.0) >= 0
    assert 1.0 <= dist.uniform(1.0, 2.0) <= 2.0
    assert dist.lognormal(0.0, 0.5) > 0
    assert dist.lognormal_by_quantiles(0.01, 0.05) > 0
