"""AllOf / AnyOf condition events."""

import pytest

from repro.sim import Simulator


def test_all_of_waits_for_every_event():
    sim = Simulator()
    done = []

    def proc(sim):
        first = sim.timeout(1.0, value="a")
        second = sim.timeout(3.0, value="b")
        results = yield sim.all_of([first, second])
        done.append((sim.now, sorted(results.values())))

    sim.process(proc(sim))
    sim.run()
    assert done == [(3.0, ["a", "b"])]


def test_any_of_fires_on_first():
    sim = Simulator()
    done = []

    def proc(sim):
        slow = sim.timeout(10.0, value="slow")
        fast = sim.timeout(2.0, value="fast")
        results = yield sim.any_of([slow, fast])
        done.append((sim.now, list(results.values())))

    sim.process(proc(sim))
    sim.run(until=5.0)
    assert done == [(2.0, ["fast"])]


def test_operator_composition():
    sim = Simulator()
    done = []

    def proc(sim):
        a = sim.timeout(1.0, value=1)
        b = sim.timeout(2.0, value=2)
        yield a & b
        done.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert done == [2.0]


def test_or_operator():
    sim = Simulator()
    done = []

    def proc(sim):
        a = sim.timeout(9.0)
        b = sim.timeout(4.0)
        yield a | b
        done.append(sim.now)

    sim.process(proc(sim))
    sim.run(until=20.0)
    assert done == [4.0]


def test_empty_all_of_triggers_immediately():
    sim = Simulator()
    condition = sim.all_of([])
    sim.run()
    assert condition.ok and condition.value == {}


def test_failed_child_fails_condition():
    sim = Simulator()
    caught = []

    def proc(sim, event):
        try:
            yield sim.all_of([sim.timeout(5.0), event])
        except RuntimeError:
            caught.append(sim.now)

    event = sim.event()
    sim.process(proc(sim, event))
    sim.call_later(1.0, event.fail, RuntimeError("child failed"))
    sim.run()
    assert caught == [1.0]


def test_condition_with_already_processed_children():
    sim = Simulator()
    early = sim.timeout(0, value="early")
    sim.run()
    assert early.processed
    late = sim.timeout(2.0, value="late")
    condition = sim.all_of([early, late])
    sim.run()
    assert condition.ok
    assert set(condition.value.values()) == {"early", "late"}


def test_mixed_simulator_events_rejected():
    sim_a, sim_b = Simulator(), Simulator()
    with pytest.raises(ValueError):
        sim_a.all_of([sim_a.timeout(1.0), sim_b.timeout(1.0)])


def test_any_of_value_contains_only_triggered_events():
    sim = Simulator()
    fast = sim.timeout(1.0, value="f")
    slow = sim.timeout(100.0, value="s")
    condition = sim.any_of([fast, slow])
    sim.run(until=2.0)
    assert condition.ok
    assert list(condition.value.keys()) == [fast]
