"""Store, PriorityStore and Resource semantics."""

import pytest

from repro.sim import PriorityStore, Resource, Simulator, Store


def drain(sim, store, out, count):
    for _ in range(count):
        item = yield store.get()
        out.append((sim.now, item))


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    out = []
    sim.process(drain(sim, store, out, 3))
    for i in range(3):
        store.put(i)
    sim.run()
    assert [item for _, item in out] == [0, 1, 2]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    out = []
    sim.process(drain(sim, store, out, 1))
    sim.call_later(5.0, store.put, "item")
    sim.run()
    assert out == [(5.0, "item")]


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer(sim):
        yield store.put("a")
        log.append(("a", sim.now))
        yield store.put("b")
        log.append(("b", sim.now))

    def consumer(sim):
        yield sim.timeout(4.0)
        item = yield store.get()
        log.append(("got", item, sim.now))

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert ("a", 0.0) in log
    assert ("b", 4.0) in log  # second put admitted when the slot freed


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put("x")
    sim.run()
    assert store.try_get() == "x"
    assert store.try_get() is None


def test_store_len_and_items():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    sim.run()
    assert len(store) == 2
    assert store.items == [1, 2]


def test_store_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_priority_store_orders_by_key():
    sim = Simulator()
    store = PriorityStore(sim, key=lambda item: item[0])
    out = []
    for entry in [(3, "low"), (1, "high"), (2, "mid")]:
        store.put(entry)
    sim.process(drain(sim, store, out, 3))
    sim.run()
    assert [item[1] for _, item in out] == ["high", "mid", "low"]


def test_priority_store_fifo_within_same_priority():
    sim = Simulator()
    store = PriorityStore(sim, key=lambda item: item[0])
    out = []
    for entry in [(1, "first"), (1, "second"), (1, "third")]:
        store.put(entry)
    sim.process(drain(sim, store, out, 3))
    sim.run()
    assert [item[1] for _, item in out] == ["first", "second", "third"]


def test_resource_limits_concurrency():
    sim = Simulator()
    cpu = Resource(sim, capacity=2)
    finish_times = []

    def job(sim):
        grant = yield cpu.acquire()
        yield sim.timeout(10.0)
        cpu.release(grant)
        finish_times.append(sim.now)

    for _ in range(4):
        sim.process(job(sim))
    sim.run()
    # Two run 0-10, two run 10-20.
    assert finish_times == [10.0, 10.0, 20.0, 20.0]


def test_resource_release_without_acquire():
    sim = Simulator()
    cpu = Resource(sim)
    with pytest.raises(RuntimeError):
        cpu.release()


def test_resource_counters():
    sim = Simulator()
    cpu = Resource(sim, capacity=3)

    def job(sim):
        yield cpu.acquire()
        yield sim.timeout(100.0)

    for _ in range(5):
        sim.process(job(sim))
    sim.run(until=1.0)
    assert cpu.in_use == 3
    assert cpu.available == 0
    assert cpu.queue_length == 2


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_fifo_granting():
    sim = Simulator()
    cpu = Resource(sim, capacity=1)
    order = []

    def job(sim, label, hold):
        grant = yield cpu.acquire()
        order.append(label)
        yield sim.timeout(hold)
        cpu.release(grant)

    sim.process(job(sim, "a", 1.0))
    sim.process(job(sim, "b", 1.0))
    sim.process(job(sim, "c", 1.0))
    sim.run()
    assert order == ["a", "b", "c"]
