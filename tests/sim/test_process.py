"""Process semantics: yielding, return values, interrupts, failures."""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


def test_process_sequential_timeouts():
    sim = Simulator()
    trace = []

    def proc(sim):
        trace.append(sim.now)
        yield sim.timeout(1.0)
        trace.append(sim.now)
        yield sim.timeout(2.0)
        trace.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert trace == [0.0, 1.0, 3.0]


def test_process_starts_at_creation_time_not_immediately():
    sim = Simulator()
    started = []

    def starter(sim):
        yield sim.timeout(5.0)
        sim.process(child(sim))

    def child(sim):
        started.append(sim.now)
        yield sim.timeout(0)

    sim.process(starter(sim))
    sim.run()
    assert started == [5.0]


def test_process_return_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        return "result"

    process = sim.process(proc(sim))
    sim.run()
    assert process.ok and process.value == "result"


def test_process_receives_event_value():
    sim = Simulator()
    received = []

    def proc(sim, event):
        value = yield event
        received.append(value)

    event = sim.event()
    sim.process(proc(sim, event))
    sim.call_later(2.0, event.succeed, "hello")
    sim.run()
    assert received == ["hello"]


def test_process_waiting_on_failed_event_sees_exception():
    sim = Simulator()
    caught = []

    def proc(sim, event):
        try:
            yield event
        except ValueError as exc:
            caught.append(str(exc))

    event = sim.event()
    sim.process(proc(sim, event))
    sim.call_later(1.0, event.fail, ValueError("oops"))
    sim.run()
    assert caught == ["oops"]


def test_process_exception_propagates_to_process_event():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("died")

    process = sim.process(proc(sim))
    sim.run()
    assert not process.ok
    assert isinstance(process.exception, RuntimeError)


def test_process_waits_on_another_process():
    sim = Simulator()
    order = []

    def child(sim):
        yield sim.timeout(3.0)
        order.append("child")
        return 99

    def parent(sim):
        value = yield sim.process(child(sim))
        order.append(("parent", value, sim.now))

    sim.process(parent(sim))
    sim.run()
    assert order == ["child", ("parent", 99, 3.0)]


def test_yield_already_processed_event_resumes_immediately():
    sim = Simulator()
    times = []

    def proc(sim, event):
        yield sim.timeout(5.0)
        value = yield event  # processed long ago
        times.append((sim.now, value))

    event = sim.event()
    event.succeed("early")
    sim.process(proc(sim, event))
    sim.run()
    assert times == [(5.0, "early")]


def test_interrupt_wakes_blocked_process():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
            log.append("never")
        except Interrupt as interrupt:
            log.append((sim.now, interrupt.cause))

    process = sim.process(sleeper(sim))
    sim.call_later(2.0, process.interrupt, "wake up")
    sim.run()
    assert log == [(2.0, "wake up")]


def test_interrupt_finished_process_raises():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(0)

    process = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        process.interrupt()


def test_interrupted_process_can_keep_running():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            pass
        yield sim.timeout(1.0)
        log.append(sim.now)

    process = sim.process(sleeper(sim))
    sim.call_later(2.0, process.interrupt)
    sim.run()
    assert log == [3.0]


def test_interrupt_detaches_from_waited_event():
    sim = Simulator()
    woke = []

    def waiter(sim, event):
        try:
            yield event
            woke.append("event")
        except Interrupt:
            woke.append("interrupt")
            yield sim.timeout(50.0)

    event = sim.event()
    process = sim.process(waiter(sim, event))
    sim.call_later(1.0, process.interrupt)
    sim.call_later(2.0, event.succeed)  # must NOT resume the process again
    sim.run()
    assert woke == ["interrupt"]
    assert sim.now == 51.0


def test_yield_non_event_raises_inside_process():
    sim = Simulator()
    caught = []

    def proc(sim):
        try:
            yield 42
        except SimulationError as exc:
            caught.append("caught")
            raise

    process = sim.process(proc(sim))
    sim.run()
    assert caught == ["caught"]
    assert not process.ok


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)


def test_is_alive():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(5.0)

    process = sim.process(proc(sim))
    assert process.is_alive
    sim.run()
    assert not process.is_alive


def test_active_process_visible_during_execution():
    sim = Simulator()
    seen = []

    def proc(sim):
        seen.append(sim.active_process)
        yield sim.timeout(0)

    process = sim.process(proc(sim))
    sim.run()
    assert seen == [process]
    assert sim.active_process is None
