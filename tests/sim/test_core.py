"""Kernel tests: clock, event ordering, run() modes."""

import pytest

from repro.sim import Event, EventAlreadyTriggered, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=5.0)
    assert sim.now == 5.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(2.5)
    sim.run()
    assert sim.now == 2.5


def test_run_until_time_stops_before_due_events():
    sim = Simulator()
    fired = []
    sim.call_later(10.0, fired.append, "late")
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert fired == []
    sim.run()
    assert fired == ["late"]
    assert sim.now == 10.0


def test_run_until_exact_boundary_excludes_event_at_deadline():
    sim = Simulator()
    fired = []
    sim.call_later(5.0, fired.append, "x")
    sim.run(until=5.0)
    assert fired == []  # events due exactly at the deadline are left queued
    sim.run()
    assert fired == ["x"]


def test_same_time_events_fifo_order():
    sim = Simulator()
    order = []
    for label in "abc":
        sim.call_later(1.0, order.append, label)
    sim.run()
    assert order == ["a", "b", "c"]


def test_events_process_in_time_order():
    sim = Simulator()
    order = []
    sim.call_later(3.0, order.append, 3)
    sim.call_later(1.0, order.append, 1)
    sim.call_later(2.0, order.append, 2)
    sim.run()
    assert order == [1, 2, 3]


def test_call_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.call_at(4.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [4.0]


def test_call_at_in_past_raises():
    sim = Simulator(start_time=10.0)
    with pytest.raises(ValueError):
        sim.call_at(5.0, lambda: None)


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        return 42

    process = sim.process(proc(sim))
    assert sim.run(until=process) == 42


def test_run_until_event_raises_its_exception():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        raise ValueError("boom")

    process = sim.process(proc(sim))
    with pytest.raises(ValueError, match="boom"):
        sim.run(until=process)


def test_run_until_never_triggered_event_raises_runtime_error():
    sim = Simulator()
    marker = sim.event()
    with pytest.raises(RuntimeError):
        sim.run(until=marker)


def test_run_backwards_raises():
    sim = Simulator(start_time=10.0)
    with pytest.raises(ValueError):
        sim.run(until=5.0)


def test_manual_event_succeed():
    sim = Simulator()
    event = sim.event()
    values = []
    event.callbacks.append(lambda ev: values.append(ev.value))
    event.succeed("payload")
    sim.run()
    assert values == ["payload"]
    assert event.processed


def test_event_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(EventAlreadyTriggered):
        event.succeed(2)
    with pytest.raises(EventAlreadyTriggered):
        event.fail(ValueError())


def test_event_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_event_value_raises_stored_exception():
    sim = Simulator()
    event = sim.event()
    event.fail(KeyError("missing"))
    sim.run()
    assert not event.ok
    with pytest.raises(KeyError):
        _ = event.value


def test_delayed_succeed():
    sim = Simulator()
    event = sim.event()
    stamps = []
    event.callbacks.append(lambda ev: stamps.append(sim.now))
    event.succeed(delay=3.0)
    sim.run()
    assert stamps == [3.0]


def test_stop_simulation_from_callback():
    sim = Simulator()
    sim.call_later(1.0, sim.stop, "halted")
    sim.call_later(2.0, lambda: pytest.fail("should not run"))
    assert sim.run() == "halted"
    assert sim.now == 1.0


def test_processed_event_counter():
    sim = Simulator()
    for _ in range(5):
        sim.timeout(1.0)
    sim.run()
    assert sim.processed_events == 5


def test_peek():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(7.0)
    sim.timeout(3.0)
    assert sim.peek() == 3.0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_event_trigger_chaining():
    sim = Simulator()
    source = sim.event()
    sink = sim.event()
    source.succeed("chained")
    sim.run()
    sink.trigger(source)
    sim.run()
    assert sink.value == "chained"


def test_event_trigger_chaining_failure():
    sim = Simulator()
    source = sim.event()
    sink = sim.event()
    source.fail(RuntimeError("bad"))
    sim.run()
    sink.trigger(source)
    sim.run()
    assert not sink.ok
    assert isinstance(sink.exception, RuntimeError)
