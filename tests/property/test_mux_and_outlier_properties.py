"""Property-based tests: mux delivery, outlier conservation, replay."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.outlier import OutlierConfig, OutlierDetector
from repro.net import Network
from repro.sim import Simulator
from repro.transport import MuxConnection, TransportConfig, TransportStack
from repro.workload import synthesize_trace


def run_mux(messages, scheduler):
    """Send (size, priority) messages over a mux pair; return delivery."""
    sim = Simulator()
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.connect("a", "b", rate_bps=50_000_000, delay=0.0005)
    config = TransportConfig(mss=15_000)
    src = TransportStack(sim, net, "a", "10.1.0.1", config=config)
    dst = TransportStack(sim, net, "b", "10.1.0.2", config=config)
    net.build_routes()
    received = []
    server = {}

    def on_accept(conn):
        server["mux"] = MuxConnection(conn)

        def receiver():
            for _ in range(len(messages)):
                message, size = yield server["mux"].receive()
                received.append((message, size))

        sim.process(receiver())

    dst.listen(80, on_accept)
    conn = src.connect("10.1.0.2", 80)
    mux = MuxConnection(conn, scheduler=scheduler)

    def sender():
        yield conn.established
        for index, (size, priority) in enumerate(messages):
            mux.send(index, size, priority=priority)

    sim.process(sender())
    sim.run(until=600.0)
    return received


message_lists = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=200_000),   # size
        st.integers(min_value=0, max_value=3),         # priority
    ),
    min_size=1,
    max_size=12,
)


@given(messages=message_lists, scheduler=st.sampled_from(["fifo", "round-robin", "priority"]))
@settings(max_examples=25, deadline=None)
def test_mux_delivers_every_message_exactly_once(messages, scheduler):
    received = run_mux(messages, scheduler)
    assert sorted(index for index, _size in received) == list(range(len(messages)))
    # Sizes survive intact.
    for index, size in received:
        assert size == messages[index][0]


@given(messages=message_lists)
@settings(max_examples=15, deadline=None)
def test_fifo_mux_preserves_send_order(messages):
    received = run_mux(messages, "fifo")
    assert [index for index, _ in received] == list(range(len(messages)))


@given(
    outcomes=st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.booleans()),
        max_size=200,
    )
)
@settings(max_examples=100, deadline=None)
def test_outlier_never_ejects_everything(outcomes):
    """With max_ejection_fraction=0.5, at least half the endpoints are
    always admitted regardless of the outcome stream."""
    detector = OutlierDetector(
        OutlierConfig(min_requests=5, error_rate_threshold=0.3,
                      max_ejection_fraction=0.5)
    )
    ips = ["a", "b", "c"]
    for step, (ip, ok) in enumerate(outcomes):
        detector.record(ip, ok, now=step * 0.01)
        healthy = detector.filter_healthy(ips, now=step * 0.01)
        assert len(healthy) >= 2
        assert set(healthy) <= set(ips)


@given(
    duration=st.floats(min_value=1.0, max_value=60.0),
    rps=st.floats(min_value=1.0, max_value=100.0),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=50, deadline=None)
def test_synthesized_traces_well_formed(duration, rps, seed):
    trace = synthesize_trace(duration, rps, seed=seed)
    times = [entry.at for entry in trace]
    assert times == sorted(times)
    assert all(0 <= t < duration for t in times)
    assert all(entry.workload in ("interactive", "batch") for entry in trace)
