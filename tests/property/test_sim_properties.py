"""Property-based tests: kernel ordering and store invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator, Store


@given(delays=st.lists(st.floats(min_value=0, max_value=1e6), max_size=200))
@settings(max_examples=100, deadline=None)
def test_events_fire_in_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.call_later(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(delays=st.lists(st.floats(min_value=0, max_value=100), max_size=100))
@settings(max_examples=100, deadline=None)
def test_clock_never_goes_backwards(delays):
    sim = Simulator()
    observed = []

    def proc(sim, delay):
        yield sim.timeout(delay)
        observed.append(sim.now)

    for delay in delays:
        sim.process(proc(sim, delay))
    last = -1.0
    while sim.peek() != float("inf"):
        sim.step()
        assert sim.now >= last
        last = sim.now


@given(
    items=st.lists(st.integers(), min_size=1, max_size=100),
    capacity=st.one_of(st.none(), st.integers(min_value=1, max_value=10)),
)
@settings(max_examples=100, deadline=None)
def test_store_is_lossless_and_ordered(items, capacity):
    sim = Simulator()
    store = Store(sim, capacity=capacity)
    received = []

    def producer(sim):
        for item in items:
            yield store.put(item)

    def consumer(sim):
        for _ in range(len(items)):
            value = yield store.get()
            received.append(value)

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert received == items


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    count=st.integers(min_value=1, max_value=50),
)
@settings(max_examples=50, deadline=None)
def test_rng_streams_reproducible(seed, count):
    from repro.sim import RngRegistry

    a = RngRegistry(seed).stream("s").random(count)
    b = RngRegistry(seed).stream("s").random(count)
    assert (a == b).all()
