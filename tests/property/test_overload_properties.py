"""Property-based invariants of the overload-control subsystem.

The three invariants the ISSUE pins down, fuzzed over random priority
mixes, latencies, and arrival orders:

* **shed ordering** — the gate never sheds a protected (LS) request in
  a state where an unprotected one would be admitted;
* **queue bound** — the leveling buffer never holds more than its
  configured depth;
* **conservation** — offered == admitted + shed (gate, per class) and
  offered == queued + rejected (buffer), with no request lost or
  double-counted.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overload import (
    QUEUED,
    REJECTED,
    AdmissionGate,
    GateConfig,
    LevelingQueue,
    RetryBudget,
)
from repro.overload.admission import PROTECTED_CLASS
from repro.sim import Simulator

classes = st.sampled_from(["LS", "LI", "default"])

#: One gate step: either a completion latency observation or an arrival.
gate_steps = st.lists(
    st.tuples(
        st.sampled_from(["observe", "admit"]),
        classes,
        st.floats(min_value=0.001, max_value=5.0),
        st.floats(min_value=0.0, max_value=0.3),  # time advance per step
    ),
    min_size=1,
    max_size=200,
)


@given(steps=gate_steps)
@settings(max_examples=150, deadline=None)
def test_gate_shed_ordering(steps):
    """No LS shed while an LI would be admitted in the same instant."""
    gate = AdmissionGate(
        GateConfig(target_s=0.2, interval_s=0.3, window_s=2.0, min_samples=5)
    )
    now = 0.0
    for kind, cls, latency, advance in steps:
        now += advance
        if kind == "observe":
            gate.observe(now, latency)
            continue
        admitted = gate.admit(cls, now)
        if cls == PROTECTED_CLASS and not admitted:
            # The decision just taken left the gate in a state where
            # every unprotected class is shed too.
            assert gate.would_shed("LI")
            assert gate.would_shed("default")
        if cls != PROTECTED_CLASS and admitted:
            # Dually: an admitted unprotected request proves the gate
            # was not dropping, so LS could not have been shed then.
            assert not gate.would_shed(PROTECTED_CLASS)


@given(steps=gate_steps)
@settings(max_examples=150, deadline=None)
def test_gate_conservation(steps):
    gate = AdmissionGate(
        GateConfig(target_s=0.2, interval_s=0.3, window_s=2.0, min_samples=5)
    )
    now = 0.0
    offered = {}
    for kind, cls, latency, advance in steps:
        now += advance
        if kind == "observe":
            gate.observe(now, latency)
        else:
            gate.admit(cls, now)
            offered[cls] = offered.get(cls, 0) + 1
    totals = gate.totals()
    assert totals["offered"] == offered
    for cls, count in offered.items():
        assert count == totals["admitted"].get(cls, 0) + totals["shed"].get(
            cls, 0
        )


#: Buffer workloads: offers of (priority, seq) with occasional gets.
buffer_ops = st.lists(
    st.tuples(st.sampled_from(["offer", "get"]), st.integers(0, 5)),
    min_size=1,
    max_size=200,
)


@given(depth=st.integers(1, 8), ops=buffer_ops)
@settings(max_examples=150, deadline=None)
def test_leveling_queue_bound_and_conservation(depth, ops):
    sim = Simulator()
    queue = LevelingQueue(sim, depth=depth, key=lambda item: item[0])
    taken = []

    def consume():
        item = yield queue.get()
        taken.append(item)

    for seq, (op, priority) in enumerate(ops):
        if op == "offer":
            outcome, displaced = queue.offer((priority, seq))
            assert outcome in (QUEUED, REJECTED)
            # A rejection never comes with a displacement, and a
            # displaced entry is never better than the newcomer.
            if outcome == REJECTED:
                assert displaced is None
            if displaced is not None:
                assert displaced[0] >= priority
        else:
            sim.process(consume())
        sim.run()  # settle consumers woken by this op's put/get
        assert len(queue) <= depth  # the bound, after every single op
    assert queue.offered == queue.queued + queue.rejected
    assert len(queue) == queue.queued - queue.evicted - len(taken)


@given(
    ops=st.lists(
        st.sampled_from(["start", "finish", "acquire", "release"]),
        min_size=1,
        max_size=200,
    ),
    ratio=st.floats(min_value=0.0, max_value=1.0),
    min_retries=st.integers(0, 3),
)
@settings(max_examples=150, deadline=None)
def test_retry_budget_never_exceeds_limit(ops, ratio, min_retries):
    budget = RetryBudget(ratio=ratio, min_retries=min_retries)
    for op in ops:
        if op == "start":
            budget.request_started()
        elif op == "finish" and budget.active_requests > 0:
            budget.request_finished()
        elif op == "acquire":
            before = budget.active_retries
            if budget.try_acquire():
                # A granted token was within the limit at grant time.
                assert budget.active_retries <= budget.limit
            else:
                assert budget.active_retries == before  # denied = no-op
        elif op == "release" and budget.active_retries > 0:
            budget.release()
        assert budget.active_retries >= 0
        assert (
            budget.retries_started
            >= budget.active_retries
        )
