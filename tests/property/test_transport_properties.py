"""Property-based tests: transport delivers everything, in order, over
arbitrary link shapes — including lossy ones."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import FifoQdisc, Network
from repro.sim import Simulator
from repro.transport import TransportConfig, TransportStack


def run_transfer(sizes, rate_bps, delay, limit_bytes, cc_name="reno"):
    sim = Simulator()
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    qdisc = FifoQdisc(limit_bytes=limit_bytes) if limit_bytes else None
    net.connect("a", "b", rate_bps=rate_bps, delay=delay, qdisc_a=qdisc)
    config = TransportConfig()
    src = TransportStack(sim, net, "a", "10.1.0.1", config=config)
    dst = TransportStack(sim, net, "b", "10.1.0.2", config=config)
    net.build_routes()
    received = []

    def on_accept(conn):
        def serve():
            for _ in range(len(sizes)):
                message, _total = yield conn.receive()
                received.append(message)

        sim.process(serve())

    dst.listen(80, on_accept)
    conn = src.connect("10.1.0.2", 80, cc_name=cc_name)

    def client(sim):
        yield conn.established
        for index, size in enumerate(sizes):
            conn.send(index, size)

    sim.process(client(sim))
    sim.run(until=300.0)
    return received


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=100_000), min_size=1, max_size=15),
    rate=st.sampled_from([1e6, 1e7, 1e8]),
    delay=st.floats(min_value=0.0, max_value=0.01),
)
@settings(max_examples=30, deadline=None)
def test_lossless_in_order_delivery(sizes, rate, delay):
    received = run_transfer(sizes, rate, delay, limit_bytes=None)
    assert received == list(range(len(sizes)))


@given(
    sizes=st.lists(
        st.integers(min_value=1, max_value=60_000), min_size=1, max_size=8
    ),
    limit=st.integers(min_value=4_000, max_value=30_000),
    cc_name=st.sampled_from(["reno", "cubic", "ledbat", "tcplp"]),
)
@settings(max_examples=25, deadline=None)
def test_delivery_survives_tail_drops(sizes, limit, cc_name):
    """Even with a tiny, lossy egress buffer every message arrives, in
    order, under every congestion-control algorithm."""
    received = run_transfer(
        sizes, rate_bps=5e6, delay=0.002, limit_bytes=limit, cc_name=cc_name
    )
    assert received == list(range(len(sizes)))
