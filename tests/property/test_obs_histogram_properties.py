"""Property-based tests: obs histogram merge algebra and quantile error.

The observability plane merges per-worker registry snapshots into one;
results may only be trusted if merging is a proper commutative monoid on
histograms (shard order and grouping must not matter) and if quantile
estimates stay within the log-linear design bound of
``9 / bins_per_decade`` relative error.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import LogLinearHistogram, MetricsRegistry, merge_snapshots, snapshot_digest

# Latencies spanning the histogram's trustable range (1 us .. 10 ks).
latencies = st.floats(min_value=1e-6, max_value=1e4, allow_nan=False)
samples = st.lists(latencies, min_size=0, max_size=60)


def _hist(values, bins_per_decade=90):
    hist = LogLinearHistogram(bins_per_decade=bins_per_decade)
    for value in values:
        hist.record(value)
    return hist


def _equivalent(a: LogLinearHistogram, b: LogLinearHistogram) -> None:
    assert a.counts == b.counts
    assert a.count == b.count
    assert a.minimum == b.minimum
    assert a.maximum == b.maximum
    # Sums are floats accumulated in different orders: equal to rounding.
    assert abs(a.sum - b.sum) <= 1e-9 * max(1.0, abs(a.sum))
    for q in (1, 50, 90, 99, 99.9):
        assert a.quantile(q) == b.quantile(q)


@given(xs=samples, ys=samples)
@settings(max_examples=100, deadline=None)
def test_merge_commutative(xs, ys):
    xy = _hist(xs)
    xy.merge(_hist(ys))
    yx = _hist(ys)
    yx.merge(_hist(xs))
    _equivalent(xy, yx)


@given(xs=samples, ys=samples, zs=samples)
@settings(max_examples=100, deadline=None)
def test_merge_associative(xs, ys, zs):
    # (x + y) + z
    left = _hist(xs)
    left.merge(_hist(ys))
    left.merge(_hist(zs))
    # x + (y + z)
    inner = _hist(ys)
    inner.merge(_hist(zs))
    right = _hist(xs)
    right.merge(inner)
    _equivalent(left, right)


@given(xs=samples, ys=samples)
@settings(max_examples=100, deadline=None)
def test_merge_equals_single_stream(xs, ys):
    merged = _hist(xs)
    merged.merge(_hist(ys))
    _equivalent(merged, _hist(xs + ys))


@given(values=st.lists(latencies, min_size=1, max_size=80))
@settings(max_examples=100, deadline=None)
def test_quantile_relative_error_within_bucket_bound(values):
    bins = 90
    hist = _hist(values, bins_per_decade=bins)
    ordered = sorted(values)
    bound = 9.0 / bins
    for q in (1, 25, 50, 75, 90, 99):
        rank = max(1, -(-int(q) * len(ordered) // 100))  # ceil(q% * n)
        true = ordered[min(rank, len(ordered)) - 1]
        estimate = hist.quantile(q)
        assert abs(estimate - true) <= bound * true + 1e-12


@given(xs=samples, ys=samples)
@settings(max_examples=50, deadline=None)
def test_snapshot_merge_order_independent(xs, ys):
    shard1, shard2 = MetricsRegistry(), MetricsRegistry()
    for value in xs:
        shard1.histogram("lat").record(value)
        shard1.counter("n").inc()
    for value in ys:
        shard2.histogram("lat").record(value)
        shard2.counter("n").inc()
    ab = merge_snapshots(shard1.snapshot(), shard2.snapshot())
    ba = merge_snapshots(shard2.snapshot(), shard1.snapshot())
    assert snapshot_digest(ab) == snapshot_digest(ba)
    assert ab["counters"].get("n", 0) == len(xs) + len(ys)
