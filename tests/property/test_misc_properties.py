"""Property-based tests: headers, stats, addressing, routing."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.http import Headers, propagate
from repro.net import SubnetAllocator
from repro.sim import lognormal_params_from_quantiles
from repro.util import summarize

header_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ-",
    min_size=1,
    max_size=20,
)
header_values = st.text(min_size=0, max_size=30)


@given(entries=st.dictionaries(header_names, header_values, max_size=20))
@settings(max_examples=100, deadline=None)
def test_headers_roundtrip_case_insensitive(entries):
    headers = Headers()
    expected = {}
    for name, value in entries.items():
        headers[name] = value
        expected[name.lower()] = value  # last write wins per folded key
    for name, value in expected.items():
        assert headers[name.upper()] == value
        assert headers[name.lower()] == value
    assert len(headers) == len(expected)


@given(entries=st.dictionaries(header_names, header_values, max_size=10))
@settings(max_examples=100, deadline=None)
def test_propagate_is_idempotent(entries):
    parent = Headers(entries)
    once = propagate(parent)
    twice = propagate(parent, propagate(parent))
    assert once == twice


@given(
    samples=st.lists(
        st.floats(min_value=1e-6, max_value=100.0), min_size=1, max_size=500
    )
)
@settings(max_examples=100, deadline=None)
def test_summary_percentiles_monotone(samples):
    summary = summarize(samples)
    assert summary.minimum <= summary.p50 <= summary.p90
    assert summary.p90 <= summary.p99 <= summary.p999 <= summary.maximum
    tolerance = 1e-9 * max(1.0, summary.maximum)
    assert summary.minimum - tolerance <= summary.mean <= summary.maximum + tolerance
    assert summary.count == len(samples)


@given(
    median=st.floats(min_value=1e-5, max_value=1.0),
    ratio=st.floats(min_value=1.1, max_value=100.0),
)
@settings(max_examples=100, deadline=None)
def test_lognormal_parameterization_exact(median, ratio):
    """The fitted lognormal has exactly the requested median and p99."""
    p99 = median * ratio
    mu, sigma = lognormal_params_from_quantiles(median, p99)
    assert np.exp(mu) == np.float64(median) or abs(np.exp(mu) - median) < 1e-9
    z99 = 2.3263478740408408
    assert abs(np.exp(mu + sigma * z99) - p99) / p99 < 1e-9


@given(owners=st.lists(st.text(min_size=1, max_size=12), max_size=300))
@settings(max_examples=50, deadline=None)
def test_subnet_allocation_stable_and_unique(owners):
    allocator = SubnetAllocator("10.7")
    first_pass = {owner: allocator.allocate(owner) for owner in owners}
    # Same owner -> same address forever.
    for owner in owners:
        assert allocator.allocate(owner) == first_pass[owner]
    # Distinct owners -> distinct addresses.
    assert len(set(first_pass.values())) == len(first_pass)
