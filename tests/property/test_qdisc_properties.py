"""Property-based tests: qdisc invariants under arbitrary traffic."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    DRRQdisc,
    FifoQdisc,
    LossyQdisc,
    Packet,
    PrioQdisc,
    Tos,
    WeightedPrioQdisc,
    classify_by_tos,
)

packet_strategy = st.builds(
    Packet,
    src=st.just("a"),
    dst=st.just("b"),
    size=st.integers(min_value=1, max_value=10_000),
    seq=st.integers(min_value=0, max_value=1_000_000),
    tos=st.sampled_from([Tos.HIGH, Tos.NORMAL, Tos.SCAVENGER]),
)

# A workload: enqueue bursts interleaved with dequeue counts.
operations = st.lists(
    st.one_of(
        st.tuples(st.just("enq"), packet_strategy),
        st.tuples(st.just("deq"), st.integers(min_value=1, max_value=5)),
    ),
    max_size=200,
)


def qdisc_variants():
    return [
        lambda: FifoQdisc(),
        lambda: FifoQdisc(limit_packets=10),
        lambda: FifoQdisc(limit_bytes=20_000),
        lambda: PrioQdisc(classifier=classify_by_tos),
        lambda: WeightedPrioQdisc(high_share=0.95),
        lambda: DRRQdisc(
            classifier=lambda p: 0 if p.tos == Tos.HIGH else 1,
            quanta=[3000, 1000],
        ),
    ]


@given(ops=operations, variant=st.integers(min_value=0, max_value=5))
@settings(max_examples=150, deadline=None)
def test_conservation_of_packets(ops, variant):
    """enqueued == dequeued + dropped + still-queued, always."""
    q = qdisc_variants()[variant]()
    offered = 0
    dequeued = 0
    for op, value in ops:
        if op == "enq":
            offered += 1
            q.enqueue(value, now=0.0)
        else:
            for _ in range(value):
                if q.dequeue(0.0) is not None:
                    dequeued += 1
    assert q.stats.enqueued + q.stats.dropped == offered
    assert q.stats.dequeued == dequeued
    assert q.stats.enqueued == dequeued + len(q)


@given(ops=operations, variant=st.integers(min_value=0, max_value=5))
@settings(max_examples=100, deadline=None)
def test_work_conservation(ops, variant):
    """dequeue() returns a packet iff the qdisc is non-empty."""
    q = qdisc_variants()[variant]()
    for op, value in ops:
        if op == "enq":
            q.enqueue(value, now=0.0)
        else:
            for _ in range(value):
                was_empty = len(q) == 0
                packet = q.dequeue(0.0)
                assert (packet is None) == was_empty
    while len(q):
        assert q.dequeue(0.0) is not None
    assert q.dequeue(0.0) is None


@given(packets=st.lists(packet_strategy, max_size=100))
@settings(max_examples=100, deadline=None)
def test_fifo_preserves_order(packets):
    q = FifoQdisc()
    for packet in packets:
        q.enqueue(packet, 0.0)
    out = []
    while True:
        packet = q.dequeue(0.0)
        if packet is None:
            break
        out.append(packet)
    assert [p.packet_id for p in out] == [p.packet_id for p in packets]


@given(packets=st.lists(packet_strategy, max_size=100))
@settings(max_examples=100, deadline=None)
def test_prio_preserves_order_within_band(packets):
    q = PrioQdisc(classifier=classify_by_tos)
    for packet in packets:
        q.enqueue(packet, 0.0)
    out = []
    while True:
        packet = q.dequeue(0.0)
        if packet is None:
            break
        out.append(packet)
    for band_filter in (
        lambda p: p.tos == Tos.HIGH,
        lambda p: p.tos != Tos.HIGH,
    ):
        expected = [p.packet_id for p in packets if band_filter(p)]
        actual = [p.packet_id for p in out if band_filter(p)]
        assert actual == expected


@given(packets=st.lists(packet_strategy, min_size=1, max_size=100))
@settings(max_examples=100, deadline=None)
def test_weighted_prio_drains_exactly_what_was_enqueued(packets):
    """Draining returns every enqueued packet exactly once, and the very
    first dequeue returns a HIGH packet whenever any HIGH is queued."""
    q = WeightedPrioQdisc(high_share=0.95)
    for packet in packets:
        q.enqueue(packet, 0.0)
    first = q.dequeue(0.0)
    if any(p.tos == Tos.HIGH for p in packets):
        assert first.tos == Tos.HIGH
    out = [first]
    while True:
        packet = q.dequeue(0.0)
        if packet is None:
            break
        out.append(packet)
    assert sorted(p.packet_id for p in out) == sorted(
        p.packet_id for p in packets
    )


@given(
    backlog=st.integers(min_value=1, max_value=50),
    high_share=st.floats(min_value=0.5, max_value=0.99),
)
@settings(max_examples=50, deadline=None)
def test_weighted_prio_byte_accounting(backlog, high_share):
    q = WeightedPrioQdisc(high_share=high_share)
    for i in range(backlog):
        tos = Tos.HIGH if i % 2 else Tos.NORMAL
        q.enqueue(Packet(src="a", dst="b", size=1500, seq=i, tos=tos), 0.0)
    assert q.backlog_bytes == 1500 * backlog
    assert q.high_backlog_bytes + q.low_backlog_bytes == q.backlog_bytes


@given(ops=operations)
@settings(max_examples=150, deadline=None)
def test_prio_strict_priority_invariant(ops):
    """A strict-priority qdisc never serves a lower band while a higher
    band is backlogged — under arbitrary enqueue/dequeue interleavings."""
    q = PrioQdisc(classifier=classify_by_tos)
    for op, value in ops:
        if op == "enq":
            q.enqueue(value, now=0.0)
        else:
            for _ in range(value):
                high_backlogged = q.band_backlog(0) > 0
                packet = q.dequeue(0.0)
                if packet is None:
                    break
                if high_backlogged:
                    assert packet.tos == Tos.HIGH


@given(ops=operations, loss=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=100, deadline=None)
def test_lossy_conservation(ops, loss):
    """Injected drops + child-accepted packets account for every offer."""
    q = LossyQdisc(FifoQdisc(), loss, np.random.default_rng(0))
    offered = 0
    dequeued = 0
    for op, value in ops:
        if op == "enq":
            offered += 1
            q.enqueue(value, now=0.0)
        else:
            for _ in range(value):
                if q.dequeue(0.0) is not None:
                    dequeued += 1
    assert q.stats.enqueued + q.stats.dropped == offered
    assert q.injected_drops <= q.stats.dropped
    assert q.stats.enqueued == dequeued + len(q)


@given(packets=st.lists(packet_strategy, max_size=100))
@settings(max_examples=100, deadline=None)
def test_lossy_zero_loss_is_transparent(packets):
    """loss=0 never drops and delegates FIFO order to the child."""
    q = LossyQdisc(FifoQdisc(), 0.0, np.random.default_rng(0))
    for packet in packets:
        assert q.enqueue(packet, 0.0)
    assert q.injected_drops == 0
    out = []
    while True:
        packet = q.dequeue(0.0)
        if packet is None:
            break
        out.append(packet)
    assert [p.packet_id for p in out] == [p.packet_id for p in packets]


@given(packets=st.lists(packet_strategy, max_size=100))
@settings(max_examples=100, deadline=None)
def test_lossy_total_loss_drops_everything(packets):
    q = LossyQdisc(FifoQdisc(), 1.0, np.random.default_rng(0))
    for packet in packets:
        assert not q.enqueue(packet, 0.0)
    assert q.injected_drops == len(packets)
    assert len(q) == 0
    assert q.dequeue(0.0) is None
