"""Property tests: sliding-window aggregates vs an exact rolling oracle.

The windowed histogram's membership is slice-aligned by design (a
sample at ``t`` is live at ``now`` iff its slice index is within the
``slices`` most recent), so a test can replay the exact same predicate
over a plain list and compare: counts must match exactly, and the
rolling p50/p99 must stay within the documented ~1 % relative bound of
the true order statistic (ceil-rank convention, matching
``LogLinearHistogram.quantile``).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import WindowedCounter, WindowedGauge, WindowedHistogram

WINDOW = 4.0
SLICES = 8

# Latencies within the histogram's trustable range; sim time advances
# by nonnegative deltas (time never goes backwards in the simulator).
latencies = st.floats(min_value=1e-6, max_value=1e4, allow_nan=False)
steps = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=2.0), latencies),
    min_size=1,
    max_size=80,
)


def _slice_index(t: float, width: float) -> int:
    # Mirrors _SliceRing._index exactly (including the boundary nudge).
    return math.floor(t / width + 1e-9)


def _live(samples, now, width):
    oldest = _slice_index(now, width) - SLICES + 1
    return sorted(v for t, v in samples if _slice_index(t, width) >= oldest)


@given(steps=steps)
@settings(max_examples=150, deadline=None)
def test_windowed_quantiles_match_exact_rolling_oracle(steps):
    hist = WindowedHistogram(WINDOW, slices=SLICES, bins_per_decade=1000)
    counter = WindowedCounter(WINDOW, slices=SLICES)
    t = 0.0
    samples = []
    for dt, value in steps:
        t += dt
        hist.record(t, value)
        counter.add(t)
        samples.append((t, value))
    now = t  # query at the newest time seen
    live = _live(samples, now, hist.slice_width)
    assert hist.count(now) == len(live)
    assert counter.total(now) == len(live)
    # The last sample is always live, so the window is never empty here.
    for q in (50.0, 99.0):
        rank = max(1, math.ceil(q / 100.0 * len(live)))
        exact = live[rank - 1]
        estimate = hist.quantile(now, q)
        assert abs(estimate - exact) <= 0.01 * exact + 1e-12


@given(steps=steps, gap=st.floats(min_value=2 * WINDOW, max_value=100.0))
@settings(max_examples=60, deadline=None)
def test_window_empties_after_a_long_gap(steps, gap):
    hist = WindowedHistogram(WINDOW, slices=SLICES)
    t = 0.0
    for dt, value in steps:
        t += dt
        hist.record(t, value)
    now = t + gap
    assert hist.count(now) == 0
    assert hist.quantile(now, 99.0) == 0.0  # empty window: documented 0.0


@given(value=latencies)
@settings(max_examples=60, deadline=None)
def test_single_sample_window(value):
    hist = WindowedHistogram(WINDOW, slices=SLICES)
    hist.record(1.0, value)
    assert hist.count(1.0) == 1
    for q in (50.0, 99.0):
        assert abs(hist.quantile(1.0, q) - value) <= 0.01 * value + 1e-12


# Gauge levels: modest magnitudes keep the float comparison honest.
levels = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
gauge_steps = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=2.0), levels),
    min_size=1,
    max_size=60,
)


def _gauge_segments(sets, now):
    """The piecewise-constant signal as (start, end, value) segments."""
    segments = []
    for (t, v), nxt in zip(sets, sets[1:] + [(now, None)]):
        segments.append((t, nxt[0], v))
    return segments


@given(steps=gauge_steps)
@settings(max_examples=150, deadline=None)
def test_gauge_mean_matches_time_weighted_oracle(steps):
    """The gauge's mean over the live window must equal the exact
    time-weighted integral of the held signal over the slice-aligned
    window, divided by the covered seconds — under arbitrary
    interleavings of sets and holds."""
    gauge = WindowedGauge(WINDOW, slices=SLICES)
    t = 0.0
    sets = []
    for dt, value in steps:
        t += dt
        gauge.set(t, value)
        sets.append((t, value))
    now = t
    width = gauge.slice_width
    ws = (_slice_index(now, width) - SLICES + 1) * width
    integral = seconds = 0.0
    for start, end, value in _gauge_segments(sets, now):
        overlap = min(end, now) - max(start, ws)
        if overlap > 0:
            integral += value * overlap
            seconds += overlap
    expected = integral / seconds if seconds > 0 else 0.0
    assert gauge.mean(now) == pytest.approx(expected, rel=1e-6, abs=1e-6)


@given(steps=gauge_steps)
@settings(max_examples=150, deadline=None)
def test_gauge_maximum_brackets_exact_oracle(steps):
    """The window maximum must equal the largest level visible in the
    live window: every set whose slice is live (spikes included) plus
    any level held across the window start.  Segments ending within a
    float hair of the window-start boundary may legitimately land on
    either side of it, so the assertion brackets the oracle."""
    gauge = WindowedGauge(WINDOW, slices=SLICES)
    t = 0.0
    sets = []
    for dt, value in steps:
        t += dt
        gauge.set(t, value)
        sets.append((t, value))
    now = t
    width = gauge.slice_width
    oldest = _slice_index(now, width) - SLICES + 1
    ws = oldest * width
    margin = width * 1e-6

    def candidates(slack):
        values = [v for (ti, v) in sets if _slice_index(ti, width) >= oldest]
        values += [
            v
            for start, end, v in _gauge_segments(sets, now)
            if min(end, now) > ws + slack and end > start
        ]
        return values

    lower = candidates(margin)       # definitely visible
    upper = candidates(-margin)      # possibly visible (boundary hairs)
    measured = gauge.maximum(now)
    assert measured >= max(lower, default=0.0) - 1e-12
    assert measured <= max(upper, default=0.0) + 1e-12


@given(steps=gauge_steps, gap=st.floats(min_value=2 * WINDOW, max_value=100.0))
@settings(max_examples=60, deadline=None)
def test_gauge_holds_last_level_across_a_gap(steps, gap):
    """Unlike the counter/histogram, a gauge does not empty after a
    quiet gap: the held level fills the entire live window."""
    gauge = WindowedGauge(WINDOW, slices=SLICES)
    t = 0.0
    last = 0.0
    for dt, value in steps:
        t += dt
        gauge.set(t, value)
        last = value
    now = t + gap
    assert gauge.mean(now) == pytest.approx(last, rel=1e-9, abs=1e-12)
    assert gauge.maximum(now) == last


@given(k=st.integers(min_value=0, max_value=200), value=latencies)
@settings(max_examples=60, deadline=None)
def test_exact_boundary_tick_is_consistent(k, value):
    """A sample recorded exactly on a slice boundary stays live for the
    full ``slices`` slices from its own slice, per the membership
    predicate (the +1e-9 nudge keeps k * width in slice k)."""
    hist = WindowedHistogram(WINDOW, slices=SLICES)
    width = hist.slice_width
    t = k * width
    hist.record(t, value)
    # Live through the last instant of slice k + SLICES - 1 ...
    assert hist.count(t + (SLICES - 1) * width) == 1
    # ... and expired the moment the next slice boundary is crossed.
    assert hist.count(t + SLICES * width) == 0
