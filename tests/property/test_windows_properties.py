"""Property tests: sliding-window aggregates vs an exact rolling oracle.

The windowed histogram's membership is slice-aligned by design (a
sample at ``t`` is live at ``now`` iff its slice index is within the
``slices`` most recent), so a test can replay the exact same predicate
over a plain list and compare: counts must match exactly, and the
rolling p50/p99 must stay within the documented ~1 % relative bound of
the true order statistic (ceil-rank convention, matching
``LogLinearHistogram.quantile``).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import WindowedCounter, WindowedHistogram

WINDOW = 4.0
SLICES = 8

# Latencies within the histogram's trustable range; sim time advances
# by nonnegative deltas (time never goes backwards in the simulator).
latencies = st.floats(min_value=1e-6, max_value=1e4, allow_nan=False)
steps = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=2.0), latencies),
    min_size=1,
    max_size=80,
)


def _slice_index(t: float, width: float) -> int:
    # Mirrors _SliceRing._index exactly (including the boundary nudge).
    return math.floor(t / width + 1e-9)


def _live(samples, now, width):
    oldest = _slice_index(now, width) - SLICES + 1
    return sorted(v for t, v in samples if _slice_index(t, width) >= oldest)


@given(steps=steps)
@settings(max_examples=150, deadline=None)
def test_windowed_quantiles_match_exact_rolling_oracle(steps):
    hist = WindowedHistogram(WINDOW, slices=SLICES, bins_per_decade=1000)
    counter = WindowedCounter(WINDOW, slices=SLICES)
    t = 0.0
    samples = []
    for dt, value in steps:
        t += dt
        hist.record(t, value)
        counter.add(t)
        samples.append((t, value))
    now = t  # query at the newest time seen
    live = _live(samples, now, hist.slice_width)
    assert hist.count(now) == len(live)
    assert counter.total(now) == len(live)
    # The last sample is always live, so the window is never empty here.
    for q in (50.0, 99.0):
        rank = max(1, math.ceil(q / 100.0 * len(live)))
        exact = live[rank - 1]
        estimate = hist.quantile(now, q)
        assert abs(estimate - exact) <= 0.01 * exact + 1e-12


@given(steps=steps, gap=st.floats(min_value=2 * WINDOW, max_value=100.0))
@settings(max_examples=60, deadline=None)
def test_window_empties_after_a_long_gap(steps, gap):
    hist = WindowedHistogram(WINDOW, slices=SLICES)
    t = 0.0
    for dt, value in steps:
        t += dt
        hist.record(t, value)
    now = t + gap
    assert hist.count(now) == 0
    assert hist.quantile(now, 99.0) == 0.0  # empty window: documented 0.0


@given(value=latencies)
@settings(max_examples=60, deadline=None)
def test_single_sample_window(value):
    hist = WindowedHistogram(WINDOW, slices=SLICES)
    hist.record(1.0, value)
    assert hist.count(1.0) == 1
    for q in (50.0, 99.0):
        assert abs(hist.quantile(1.0, q) - value) <= 0.01 * value + 1e-12


@given(k=st.integers(min_value=0, max_value=200), value=latencies)
@settings(max_examples=60, deadline=None)
def test_exact_boundary_tick_is_consistent(k, value):
    """A sample recorded exactly on a slice boundary stays live for the
    full ``slices`` slices from its own slice, per the membership
    predicate (the +1e-9 nudge keeps k * width in slice k)."""
    hist = WindowedHistogram(WINDOW, slices=SLICES)
    width = hist.slice_width
    t = k * width
    hist.record(t, value)
    # Live through the last instant of slice k + SLICES - 1 ...
    assert hist.count(t + (SLICES - 1) * width) == 1
    # ... and expired the moment the next slice boundary is crossed.
    assert hist.count(t + SLICES * width) == 0
