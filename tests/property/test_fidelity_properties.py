"""Property-based validation of the fluid transport model.

On a single uncongested link — the regime the fluid fast path is built
for — the analytic completion time must track the packet-level
simulation across arbitrary sizes, rates, and propagation delays.  The
tolerance here (2% relative, 50 µs absolute floor) is tighter than the
5% the X-8 acceptance gate allows on the full Figure-4 scenario.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Network
from repro.sim import Simulator
from repro.transport import TransportConfig, TransportSpec, TransportStack

TOLERANCE_REL = 0.02
TOLERANCE_ABS = 50e-6


def transfer_time(fidelity, size, rate_bps, delay, mss):
    """Seconds from established connection to message delivery."""
    sim = Simulator()
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.connect("a", "b", rate_bps=rate_bps, delay=delay)
    spec = TransportSpec(fidelity=fidelity, mss=mss, header_bytes=60)
    config = TransportConfig.from_spec(spec)
    src = TransportStack(sim, net, "a", "10.1.0.1", config=config)
    dst = TransportStack(sim, net, "b", "10.1.0.2", config=config)
    net.build_routes()
    delivered = []

    def on_accept(conn):
        def loop():
            yield conn.receive()
            delivered.append(sim.now)

        sim.process(loop())

    dst.listen(80, on_accept)
    conn = src.connect("10.1.0.2", 80)

    def client(sim):
        yield conn.established
        conn.send("m", size)

    sim.process(client(sim))
    sim.run(until=conn.established)
    start = sim.now
    sim.run(until=600.0)
    assert delivered, "transfer never completed"
    return delivered[0] - start


@given(
    size=st.integers(min_value=1_000, max_value=1_000_000),
    rate=st.sampled_from([1e8, 1e9, 1e10]),
    delay=st.sampled_from([20e-6, 200e-6, 2e-3]),
    mss=st.sampled_from([1460, 15_000]),
)
@settings(max_examples=25, deadline=None)
def test_fluid_tracks_packet_on_uncongested_link(size, rate, delay, mss):
    packet = transfer_time("packet", size, rate, delay, mss)
    fluid = transfer_time("fluid", size, rate, delay, mss)
    allowed = max(TOLERANCE_ABS, TOLERANCE_REL * packet)
    assert abs(fluid - packet) <= allowed, (
        f"size={size} rate={rate:g} delay={delay:g} mss={mss}: "
        f"packet={packet * 1e3:.3f}ms fluid={fluid * 1e3:.3f}ms"
    )


@given(
    sizes=st.lists(
        st.integers(min_value=1_000, max_value=300_000), min_size=2, max_size=6
    ),
)
@settings(max_examples=15, deadline=None)
def test_fluid_delivery_order_is_fifo(sizes):
    """Mixed small/large sends on one fluid connection arrive in order
    (chained completions), whatever their individual analytic times."""
    sim = Simulator()
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.connect("a", "b", rate_bps=1e9, delay=0.001)
    config = TransportConfig.from_spec(
        TransportSpec(fidelity="fluid", mss=15_000, header_bytes=60)
    )
    src = TransportStack(sim, net, "a", "10.1.0.1", config=config)
    dst = TransportStack(sim, net, "b", "10.1.0.2", config=config)
    net.build_routes()
    received = []

    def on_accept(conn):
        def loop():
            while True:
                message, _size = yield conn.receive()
                received.append(message)

        sim.process(loop())

    dst.listen(80, on_accept)
    conn = src.connect("10.1.0.2", 80)

    def client(sim):
        yield conn.established
        for index, size in enumerate(sizes):
            conn.send(index, size)

    sim.process(client(sim))
    sim.run(until=120.0)
    assert received == list(range(len(sizes)))
